package transport

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"topk/internal/obs"
)

// This file is the replica-aware half of the HTTP backend: the cluster
// topology (which URLs serve which list), the per-replica connection
// state the client keeps (health, EWMA latency, failover tallies), the
// routing policies that pick a replica per exchange, and the background
// health prober. The replicas of a list serve identical data but do NOT
// share per-session protocol state, which is what splits the traffic in
// two:
//
//   - stateless exchanges (sorted, lookup, fetch — all replayable) may
//     be served by any replica holding the session and fail over to a
//     sibling when their replica dies mid-query;
//   - sessionful exchanges (probe, mark, topk, above — anything that
//     reads or advances a per-session cursor or tracker) pin the session
//     to one replica per list; if that replica dies, the query fails
//     fast with a typed OwnerFailedError instead of silently resuming on
//     a replica whose cursors never advanced.

// Topology maps every list to its replica set: Topology[i] holds the
// base URLs of the owner processes serving list i. Every replica of a
// list must own the same list of the same database; a flat single-owner
// cluster is simply a topology of one-replica lists.
type Topology [][]string

// SingleTopology lifts a flat owner set (urls[i] serves list i) into a
// one-replica-per-list topology — the shape DialOwners and the
// pre-replica DialCluster API dial.
func SingleTopology(urls []string) Topology {
	tp := make(Topology, len(urls))
	for i, u := range urls {
		tp[i] = []string{u}
	}
	return tp
}

// Validate rejects empty topologies, lists with no replicas and blank
// URLs — the shapes Dial cannot route.
func (tp Topology) Validate() error {
	if len(tp) == 0 {
		return fmt.Errorf("transport: no owner URLs")
	}
	for i, reps := range tp {
		if len(reps) == 0 {
			return fmt.Errorf("transport: list %d has no replicas", i)
		}
		for j, u := range reps {
			if strings.TrimSpace(u) == "" {
				return fmt.Errorf("transport: list %d replica %d: empty URL", i, j)
			}
		}
	}
	return nil
}

// Replicated reports whether any list has more than one replica — the
// switch that arms session pinning, failover and the client-side access
// ledger.
func (tp Topology) Replicated() bool {
	for _, reps := range tp {
		if len(reps) > 1 {
			return true
		}
	}
	return false
}

// RoutingPolicy selects which replica of a list serves a stateless
// exchange (and which replica a session pins its sessionful traffic to,
// decided once per session per list).
type RoutingPolicy uint8

const (
	// RoutePrimary always prefers the lowest-index healthy replica:
	// replicas beyond the first are pure standbys. The default.
	RoutePrimary RoutingPolicy = iota
	// RouteRoundRobin rotates stateless exchanges across the healthy
	// replicas of each list.
	RouteRoundRobin
	// RouteFastest prefers the healthy replica with the lowest EWMA
	// round-trip latency, measured from health probes and data-plane
	// exchanges.
	RouteFastest
)

// String returns the policy name ParseRoutingPolicy accepts.
func (p RoutingPolicy) String() string {
	switch p {
	case RoutePrimary:
		return "primary"
	case RouteRoundRobin:
		return "round-robin"
	case RouteFastest:
		return "fastest"
	default:
		return fmt.Sprintf("RoutingPolicy(%d)", uint8(p))
	}
}

// ParseRoutingPolicy resolves a policy name, case-insensitively.
func ParseRoutingPolicy(name string) (RoutingPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "primary":
		return RoutePrimary, nil
	case "round-robin", "roundrobin", "rr":
		return RouteRoundRobin, nil
	case "fastest":
		return RouteFastest, nil
	default:
		return 0, fmt.Errorf("transport: unknown routing policy %q (want primary, round-robin or fastest)", name)
	}
}

// OwnerFailedError reports a replica failing mid-query on traffic the
// session could not move: sessionful exchanges (probe, above, mark,
// topk, or a batch carrying one) live on the cursors and trackers of
// the pinned replica, and when it dies the session hands off to its
// synced mirror sibling. This error surfaces only when no synced mirror
// exists — a flat single-replica list, handoff disabled, or every
// sibling already failed. It names the list and the replica so an
// operator knows which process to look at; callers should rerun the
// query (or let the dist restart driver do it) — a fresh session pins
// to a live replica.
type OwnerFailedError struct {
	// List is the list index whose pinned replica failed.
	List int
	// Replica is the index of the failed replica within the list's
	// replica set.
	Replica int
	// URL is the failed replica's base URL.
	URL string
	// Err is the underlying transport failure.
	Err error
}

// Error names owner (list), replica and URL.
func (e *OwnerFailedError) Error() string {
	return fmt.Sprintf("transport: owner %d replica %d (%s) failed mid-query: %v", e.List, e.Replica, e.URL, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *OwnerFailedError) Unwrap() error { return e.Err }

// replica is the client-side state of one owner process: its URL, the
// last known health verdict, an EWMA of observed round-trip latency and
// the failure/failover tallies. All fields are atomics — the prober,
// concurrent sessions and Health snapshots touch them without locks.
type replica struct {
	list  int
	index int
	url   string

	// validated records that the replica passed the shape handshake
	// (right list index, list length, cluster width, codec) — at dial
	// time or, for replicas that were down then, by the health prober
	// before it first marks them healthy. route never selects an
	// unvalidated replica: a misconfigured process that comes up late
	// must not silently serve a different list.
	validated atomic.Bool
	healthy   atomic.Bool
	// ewma holds the smoothed round-trip latency in nanoseconds, 0 until
	// first measured. Updated from the dial handshake, health probes and
	// every successful data-plane exchange (alpha 1/4).
	ewma atomic.Int64
	// failures counts transport-level failures observed on the data
	// plane (connection errors, per-attempt timeouts, 5xx).
	failures atomic.Int64
	// failovers counts exchanges this replica served after a sibling
	// replica failed them first.
	failovers atomic.Int64

	// brk is the replica's circuit breaker: consecutive data-plane or
	// probe failures open it and routing stops offering the replica
	// traffic until a half-open probe succeeds (breaker.go).
	brk breaker

	// probeFails counts consecutive failed health probes and nextProbe
	// (unix nanos) is when the prober may try again: a persistently-down
	// replica is probed at an exponentially decaying, capped cadence
	// instead of being hammered every interval.
	probeFails atomic.Int64
	nextProbe  atomic.Int64

	// mHealthy, mEwma and mBreaker are this replica's cached obs gauge
	// handles (topk_client_replica_healthy, topk_client_probe_ewma_seconds,
	// topk_client_breaker_open), installed at dial so the hot path never
	// touches the registry. nil on replicas built outside Dial (tests).
	mHealthy *obs.Gauge
	mEwma    *obs.Gauge
	mBreaker *obs.Gauge
}

// noteFailure tallies one transport-level failure against the replica.
func (r *replica) noteFailure() {
	r.failures.Add(1)
	mClientReplicaFails.Inc()
}

// observe folds one latency sample into the EWMA.
func (r *replica) observe(d time.Duration) {
	if d <= 0 {
		d = 1
	}
	for {
		old := r.ewma.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)/4
			if next <= 0 {
				next = 1
			}
		}
		if r.ewma.CompareAndSwap(old, next) {
			if r.mEwma != nil {
				r.mEwma.Set(time.Duration(next).Seconds())
			}
			return
		}
	}
}

// tripFailure feeds one failure into the replica's circuit breaker,
// logging and counting the open transition when this failure trips it.
// Fed by the data plane and the health prober alike — K consecutive
// failures from either stop traffic to the replica.
func (t *HTTPClient) tripFailure(r *replica) {
	if !r.brk.failure(time.Now()) {
		return
	}
	if r.mBreaker != nil {
		r.mBreaker.Set(1)
	}
	mClientBreakerOpened.Inc()
	t.log.Warn("circuit breaker opened", "list", r.list, "replica", r.index, "url", r.url,
		"cooldown", time.Duration(r.brk.cooldown.Load()))
}

// tripSuccess feeds one success into the breaker, closing it (and
// readmitting the replica to routing) when it was open.
func (t *HTTPClient) tripSuccess(r *replica) {
	if !r.brk.success() {
		return
	}
	if r.mBreaker != nil {
		r.mBreaker.Set(0)
	}
	mClientBreakerClosed.Inc()
	t.log.Info("circuit breaker closed", "list", r.list, "replica", r.index, "url", r.url)
}

// noteHealth records a replica health verdict; only an actual change
// of verdict moves the transition counter, the per-replica gauge and
// the structured log — the hot path's redundant "still healthy"
// confirmations cost one atomic swap.
func (t *HTTPClient) noteHealth(r *replica, healthy bool) {
	if r.healthy.Swap(healthy) == healthy {
		return
	}
	if healthy {
		if r.mHealthy != nil {
			r.mHealthy.Set(1)
		}
		mClientHealthUp.Inc()
		t.log.Info("replica healthy", "list", r.list, "replica", r.index, "url", r.url)
		return
	}
	if r.mHealthy != nil {
		r.mHealthy.Set(0)
	}
	mClientHealthDown.Inc()
	t.log.Warn("replica unhealthy", "list", r.list, "replica", r.index, "url", r.url)
}

// ReplicaHealth is one replica's state as seen by the client — the
// verbose-output and monitoring snapshot.
type ReplicaHealth struct {
	// List and Replica locate the replica in the topology.
	List    int
	Replica int
	// URL is the replica's base URL.
	URL string
	// Healthy is the last verdict of the health prober or data plane.
	Healthy bool
	// Latency is the EWMA round-trip latency (0 if never measured).
	Latency time.Duration
	// Failures counts observed data-plane failures; Failovers counts
	// exchanges this replica served after a sibling failed them.
	Failures  int64
	Failovers int64
	// Breaker is the circuit breaker's phase: "closed" (traffic flows),
	// "open" (cooling down, routing avoids the replica) or "half-open"
	// (the next exchange is the readmission probe).
	Breaker string
}

// Health snapshots the per-replica connection state, lists in order,
// replicas in topology order within each list.
func (t *HTTPClient) Health() []ReplicaHealth {
	var out []ReplicaHealth
	now := time.Now()
	for _, reps := range t.lists {
		for _, r := range reps {
			out = append(out, ReplicaHealth{
				List:      r.list,
				Replica:   r.index,
				URL:       r.url,
				Healthy:   r.healthy.Load(),
				Latency:   time.Duration(r.ewma.Load()),
				Failures:  r.failures.Load(),
				Failovers: r.failovers.Load(),
				Breaker:   r.brk.state(now),
			})
		}
	}
	return out
}

// DefaultHealthInterval is the background prober's cadence when the dial
// config leaves it zero. Short enough that a replica crash is noticed
// within a few queries, long enough that idle clusters cost nothing
// measurable.
const DefaultHealthInterval = 3 * time.Second

// healthProbeTimeout caps one /healthz probe: a hung replica must not
// stall the sweep past the next tick.
const healthProbeTimeout = 2 * time.Second

// probeBackoffCap bounds the probe backoff of a persistently-down
// replica: however long it has been failing, the prober looks again at
// least this often, so a revived process is readmitted within a
// bounded wait.
const probeBackoffCap = 30 * time.Second

// startProber launches the background health loop: every interval it
// probes /healthz of every due replica in parallel, restoring replicas
// the data plane marked dead and demoting ones that stopped answering.
// Replicas that keep failing their probes are re-checked at an
// exponentially decaying, capped cadence instead of every tick. Close
// stops the loop and waits for it.
func (t *HTTPClient) startProber(interval time.Duration) {
	t.healthEvery = interval
	ctx, cancel := context.WithCancel(context.Background())
	t.probeCancel = cancel
	t.proberDone = make(chan struct{})
	go func() {
		defer close(t.proberDone)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				t.sweepHealth(ctx)
			}
		}
	}()
}

// sweepHealth probes every due replica once, in parallel. A replica in
// probe backoff (nextProbe in the future) is skipped — a down host
// must not be hammered at the full cadence forever.
func (t *HTTPClient) sweepHealth(ctx context.Context) {
	now := time.Now().UnixNano()
	var wg sync.WaitGroup
	for _, reps := range t.lists {
		for _, r := range reps {
			if now < r.nextProbe.Load() {
				continue
			}
			wg.Add(1)
			go func(r *replica) {
				defer wg.Done()
				t.probeReplica(ctx, r)
			}(r)
		}
	}
	wg.Wait()
}

// probeFailed schedules a failing replica's next probe with
// exponential backoff: the gap doubles with each consecutive failure,
// capped at probeBackoffCap. It also feeds the failure to the circuit
// breaker, so a replica that dies between queries is already fenced
// when the next query starts.
func (t *HTTPClient) probeFailed(r *replica) {
	fails := r.probeFails.Add(1)
	gap := t.healthEvery
	if gap <= 0 {
		gap = DefaultHealthInterval
	}
	if fails > 16 {
		fails = 16
	}
	for i := int64(0); i < fails && gap < probeBackoffCap; i++ {
		gap *= 2
	}
	if gap > probeBackoffCap {
		gap = probeBackoffCap
	}
	r.nextProbe.Store(time.Now().Add(gap).UnixNano())
	t.tripFailure(r)
}

// probeRecovered clears a replica's probe backoff after a successful
// probe.
func (r *replica) probeRecovered() {
	r.probeFails.Store(0)
	r.nextProbe.Store(0)
}

// probeReplica performs one health round-trip and updates the replica's
// verdict and EWMA. A replica that was down at dial time — never
// handshake-validated — or that has been failing probes (its process
// may have been replaced while it was down) is probed through /stats
// instead and must pass the same shape validation Dial applies before
// it counts as healthy again: reviving a misconfigured process
// unchecked would let it silently serve the wrong list.
func (t *HTTPClient) probeReplica(ctx context.Context, r *replica) {
	if !r.validated.Load() || r.probeFails.Load() > 0 {
		t.validateReplica(ctx, r)
		return
	}
	pctx, cancel := context.WithTimeout(ctx, healthProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, r.url+"/healthz", nil)
	if err != nil {
		t.noteHealth(r, false)
		return
	}
	start := time.Now()
	resp, err := t.hc.Do(req)
	if err == nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
	if ctx.Err() != nil {
		return // the client is closing; no verdict from an aborted probe
	}
	if err == nil && resp.StatusCode == http.StatusOK {
		r.probeRecovered()
		r.observe(time.Since(start))
		t.noteHealth(r, true)
		return
	}
	t.probeFailed(r)
	t.noteHealth(r, false)
}

// validateReplica runs the dial-time shape handshake against a replica
// that has never passed it (or is being readmitted after failed
// probes), promoting it to validated+healthy only on success. A
// replica that answers with the wrong shape is unroutable until it
// validates again — and one that had been validated is demoted, since
// the process behind the URL evidently changed. Probe successes here
// deliberately do not close the circuit breaker: readmission to the
// data plane goes through the breaker's half-open probe exchange.
func (t *HTTPClient) validateReplica(ctx context.Context, r *replica) {
	pctx, cancel := context.WithTimeout(ctx, healthProbeTimeout)
	defer cancel()
	start := time.Now()
	st, err := t.replicaInfo(pctx, r)
	if ctx.Err() != nil {
		return
	}
	if err != nil {
		t.probeFailed(r)
		t.noteHealth(r, false)
		return
	}
	// A cluster whose data plane speaks binary must not admit a replica
	// that cannot; under forced/negotiated JSON the codec is moot.
	if err := t.checkShape(r, st, t.binaryWire()); err != nil {
		r.validated.Store(false)
		t.probeFailed(r)
		t.noteHealth(r, false)
		return
	}
	r.validated.Store(true)
	r.probeRecovered()
	r.observe(time.Since(start))
	t.noteHealth(r, true)
}

// route picks the replica of list to address next under the client's
// policy. allowed filters to the replicas this session may use (those
// that hold its state), tried excludes replicas that already failed the
// exchange being routed. Healthy candidates with a closed (or
// half-open) breaker are preferred; when none exist the policy runs
// over the unhealthy remainder — a verdict can be stale, and attempting
// a "dead" replica is how a single-replica list keeps working at all —
// and only when even those are gone over the breaker-blocked ones, so
// an open breaker diverts traffic rather than failing a list that has
// no alternative. Returns nil only when allowed+tried leave nothing.
func (t *HTTPClient) route(list int, allowed []bool, tried []bool) *replica {
	var healthy, rest, fenced []*replica
	now := time.Now()
	for _, r := range t.lists[list] {
		if !r.validated.Load() {
			continue // never handshake-validated: shape unknown
		}
		if allowed != nil && !allowed[r.index] {
			continue
		}
		if tried != nil && tried[r.index] {
			continue
		}
		switch {
		case r.brk.blocked(now):
			fenced = append(fenced, r)
		case r.healthy.Load():
			healthy = append(healthy, r)
		default:
			rest = append(rest, r)
		}
	}
	cands := healthy
	if len(cands) == 0 {
		cands = rest
	}
	if len(cands) == 0 {
		cands = fenced
	}
	switch len(cands) {
	case 0:
		return nil
	case 1:
		return cands[0]
	}
	switch t.policy {
	case RouteRoundRobin:
		return cands[int(t.rr[list].Add(1)-1)%len(cands)]
	case RouteFastest:
		best := cands[0]
		for _, r := range cands[1:] {
			be, re := best.ewma.Load(), r.ewma.Load()
			// An unmeasured replica (0) counts as fastest: explore it so
			// it gets a measurement.
			if re == 0 && be != 0 || re != 0 && be != 0 && re < be {
				best = r
			}
		}
		return best
	default: // RoutePrimary
		return cands[0]
	}
}
