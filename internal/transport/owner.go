package transport

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/list"
)

// OwnerStats is the control-plane bookkeeping of one owner: what the
// originator needs to assemble a Result but that is not protocol traffic
// (see Session.Stats). MinScore is owner metadata known without a
// charged access, cf. the centralized list floors.
type OwnerStats struct {
	// Index is the list the owner serves.
	Index int `json:"index"`
	// N is the list length.
	N int `json:"n"`
	// M is the number of lists of the owner's database — every owner of
	// a cluster must agree on it.
	M int `json:"m"`
	// MinScore is the score at the last position of the list.
	MinScore float64 `json:"minScore"`
	// Replica is the owner process's replica label within its list's
	// replica set ("" when the deployment does not use replicas) —
	// advertised in the /stats handshake so originators and operators
	// can tell which of a list's interchangeable owners they reached.
	Replica string `json:"replica,omitempty"`
	// Accesses tallies the session's list accesses.
	Accesses access.Counts `json:"accesses"`
	// Best is the session's tracker's current best position.
	Best int `json:"best"`
	// Depth is the deepest sorted position the session has read.
	Depth int `json:"depth"`
	// Codecs lists the wire codecs the owner speaks ("binary", "json"),
	// filled by the dial handshake so clients can negotiate the binary
	// codec without a separate capability endpoint.
	Codecs []string `json:"codecs,omitempty"`
	// OpenSessions and Evictions report the owner's session hygiene: how
	// many sessions are live, and how many idle ones the TTL sweep has
	// reclaimed over the owner's lifetime.
	OpenSessions int   `json:"openSessions,omitempty"`
	Evictions    int64 `json:"evictions,omitempty"`
	// Mutable reports that the owner serves an updatable list — the live
	// update plane is on; Version counts the update batches applied to it
	// so far. Both zero/absent on read-only owners. Version is also
	// piggybacked on every update ack, which is how the live coordinator
	// tells replicas of one list apart from each other's lag.
	Mutable bool   `json:"mutable,omitempty"`
	Version uint64 `json:"version,omitempty"`
}

// ErrUnknownSession reports a message carrying a session ID the owner
// holds no state for — never opened, already closed, or evicted. The
// HTTP server maps it to 404 so clients can tell it from a malformed
// request (which is never worth a retry either).
var ErrUnknownSession = errors.New("unknown session")

// MaxSessions is the default bound on concurrently open sessions per
// owner (see SetMaxSessions), so originators that crash without
// closing their sessions degrade into a clear error instead of
// unbounded owner-side state.
const MaxSessions = 4096

// DefaultMaxInflight is the default admission-control bound on
// concurrently served data-plane exchanges (see SetMaxInflight). An
// exchange beyond the bound is shed with ErrOverloaded before any work
// is done — the client treats the typed retry-after as backpressure.
const DefaultMaxInflight = 1024

// DefaultRetryAfter is the pause an overloaded owner suggests to shed
// clients. Short: shedding exists to smear a burst out over tens of
// milliseconds, not to park clients.
const DefaultRetryAfter = 25 * time.Millisecond

// ErrOverloaded reports an exchange shed by owner-side admission
// control: the owner was at its in-flight (or session) bound and
// refused the work before doing any of it. Because nothing ran, a shed
// exchange is safe to re-send whatever its kind — the HTTP server maps
// this to 429 plus a Retry-After hint and the client waits it out
// instead of counting a failure.
var ErrOverloaded = errors.New("owner overloaded")

// ErrReadOnly reports an update sent to an owner whose list is not
// mutable: it was loaded read-only (the default), or is stripe-backed —
// disk stripes stay read-only until the stripe write path exists
// (ROADMAP 3b). The HTTP server maps it to 400: re-sending the update
// cannot succeed.
var ErrReadOnly = errors.New("owner list is read-only")

// DefaultSessionTTL is the idle bound after which an owner may evict a
// session: a session untouched for this long was abandoned by an
// originator that never closed it (crash, network partition), and
// reclaiming it keeps churn from accumulating toward the MaxSessions
// hard error. Far above any inter-exchange gap of a live query.
const DefaultSessionTTL = 15 * time.Minute

// ownerSession is the owner-side state of one query session: the probe
// charging this session's accesses, the seen-position tracker of
// BPA/BPA2, and the scan cursor of TPUT. Handlers of one session are
// serialized by its mutex; distinct sessions proceed in parallel.
// lastUsed is written only under the owner's table mutex (every handler
// resolves the session through Owner.session), which is also where the
// eviction sweep reads it.
type ownerSession struct {
	mu       sync.Mutex
	pr       *access.Probe
	tr       bestpos.Tracker
	depth    int
	lastUsed time.Time
}

// Owner is the owner-side half of every backend: the message handlers of
// one list owner, shared verbatim by Loopback, Concurrent and the HTTP
// server so that responses — and therefore the originator's accounting —
// are identical by construction.
//
// An Owner accesses only its own list, through an access.Probe so the
// paper's access metrics fall out exactly as in the centralized
// algorithms. All protocol state is keyed by the session ID carried in
// every message: N originators may run concurrent queries against one
// owner, and only exchanges of the same session serialize (on that
// session's mutex — the owner-wide mutex guards nothing but the session
// table).
type Owner struct {
	index   int
	m       int
	n       int
	replica string         // replica label advertised in /stats
	db      *list.Database // single-list database over the owned list

	mu        sync.Mutex
	sessions  map[string]*ownerSession
	ttl       time.Duration // idle bound; <= 0 disables eviction
	nextSweep time.Time
	evictions int64
	maxSess   int // open-session bound; <= 0 means unbounded

	// Admission control: inflight tracks data-plane exchanges being
	// served right now, maxInflight bounds them (<= 0 disables). Atomics
	// so TryAcquire/Release stay off the session-table mutex.
	inflight    atomic.Int64
	maxInflight atomic.Int64
	shed        atomic.Int64

	// Live update plane (nil on read-only owners): mut is the updatable
	// list behind db, feeds the last applied sequence number per feed
	// (the idempotency ledger), filters the standing-query notification
	// filters. All guarded by liveMu — updates serialize against each
	// other and against filter installs, never against query sessions,
	// which read immutable list snapshots.
	mut     *list.Mutable
	liveMu  sync.Mutex
	feeds   map[string]uint64
	filters map[string]*ownerFilter

	// log narrates session lifecycle (open/close/evict) for operators.
	// Never nil — a discard logger until SetLogger installs a real one —
	// and write-once before serving, so handlers read it without locks.
	log *slog.Logger
}

// NewOwner returns the owner of list index of db, ready to serve query
// sessions. Idle sessions are evicted after DefaultSessionTTL; see
// SetSessionTTL.
func NewOwner(db *list.Database, index int) (*Owner, error) {
	if db == nil {
		return nil, fmt.Errorf("transport: nil database")
	}
	if index < 0 || index >= db.M() {
		return nil, fmt.Errorf("transport: list index %d out of range [0,%d)", index, db.M())
	}
	own, err := list.NewReaderDatabase(db.List(index))
	if err != nil {
		return nil, err
	}
	o := &Owner{
		index:    index,
		m:        db.M(),
		n:        db.N(),
		db:       own,
		sessions: make(map[string]*ownerSession),
		ttl:      DefaultSessionTTL,
		maxSess:  MaxSessions,
		log:      slog.New(slog.DiscardHandler),
	}
	o.maxInflight.Store(DefaultMaxInflight)
	if mut, ok := db.List(index).(*list.Mutable); ok {
		o.enableUpdates(mut)
	}
	return o, nil
}

// EnableUpdates swaps the owner's list for a mutable copy seeded with
// its current contents, turning the update plane on — the path
// cmd/topk-owner's -mutable flag takes for lists loaded from immutable
// storage. Owners built directly over a *list.Mutable are
// update-enabled from the start (NewOwner detects it). Call before
// serving traffic; in-flight sessions would otherwise keep reading the
// old list.
func (o *Owner) EnableUpdates() error {
	if o.mut != nil {
		return nil
	}
	mut, err := list.MutableFromReader(o.db.List(0))
	if err != nil {
		return fmt.Errorf("transport: owner %d: %w", o.index, err)
	}
	db, err := list.NewReaderDatabase(mut)
	if err != nil {
		return err
	}
	o.db = db
	o.enableUpdates(mut)
	return nil
}

func (o *Owner) enableUpdates(mut *list.Mutable) {
	o.mut = mut
	o.feeds = make(map[string]uint64)
	o.filters = make(map[string]*ownerFilter)
}

// ownerFilter is one standing query's notification filter at this
// owner, installed by the live coordinator (Mäcker-style monitoring:
// the owner stays silent while its local drift provably cannot change
// the global top-k). watch holds the query's current top-k members —
// any update touching one is a crossing. slack is this owner's share of
// the coordinator's gap between the k-th and (k+1)-th aggregate score;
// drift accumulates each non-member's local score movement since the
// filter was installed, and a crossing fires once an item's positive
// drift reaches the slack: a non-member can displace a member only by
// gaining at least the full gap summed across all owners, so as long as
// every owner's drift stays under its share, the ranking provably
// stands.
type ownerFilter struct {
	slack float64
	watch map[list.ItemID]struct{}
	drift map[list.ItemID]float64
}

// crossed folds a batch's deltas into the filter's drift and reports
// whether the batch may change the query's top-k: it touched a watched
// member, or some non-member's cumulative positive drift since the
// filter was installed reached this owner's slack. Zero slack (a tied
// k-th/(k+1)-th boundary) degenerates to "any positive non-member
// drift crosses" — still sound, just suppressing nothing. Drift is kept
// after a crossing, so a lost notification re-fires on the next touch
// instead of going silently stale.
func (f *ownerFilter) crossed(ups []list.Update) bool {
	hit := false
	for _, u := range ups {
		if _, ok := f.watch[u.Item]; ok {
			hit = true
			continue
		}
		d := f.drift[u.Item] + u.Delta
		f.drift[u.Item] = d
		if d > 0 && d >= f.slack {
			hit = true
		}
	}
	return hit
}

// SetFilter installs (or replaces) the notification filter of one
// standing query, resetting its drift accounting — the coordinator
// reinstalls filters after every re-evaluation, so drift always
// measures movement since the last known-good ranking. Control-plane;
// fails when the update plane is off.
func (o *Owner) SetFilter(query string, slack float64, watch []list.ItemID) error {
	if o.mut == nil {
		return fmt.Errorf("transport: owner %d: %w", o.index, ErrReadOnly)
	}
	if query == "" {
		return fmt.Errorf("transport: owner %d: empty filter query name", o.index)
	}
	if math.IsNaN(slack) || slack < 0 {
		return fmt.Errorf("transport: owner %d: filter slack %v must be >= 0", o.index, slack)
	}
	f := &ownerFilter{
		slack: slack,
		watch: make(map[list.ItemID]struct{}, len(watch)),
		drift: make(map[list.ItemID]float64),
	}
	for _, d := range watch {
		f.watch[d] = struct{}{}
	}
	o.liveMu.Lock()
	o.filters[query] = f
	o.liveMu.Unlock()
	return nil
}

// ClearFilter removes one standing query's filter. Unknown names are a
// no-op so teardown is idempotent.
func (o *Owner) ClearFilter(query string) {
	if o.mut == nil {
		return
	}
	o.liveMu.Lock()
	delete(o.filters, query)
	o.liveMu.Unlock()
}

// Filters reports how many standing-query filters are installed.
func (o *Owner) Filters() int {
	o.liveMu.Lock()
	defer o.liveMu.Unlock()
	return len(o.filters)
}

// SetLogger installs a structured logger for the owner's session
// lifecycle events (open, close, evict). nil restores the discard
// logger. Install before serving traffic, like SetSessionTTL.
func (o *Owner) SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.DiscardHandler)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.log = l.With("list", o.index)
}

// SetSessionTTL changes the idle bound after which a session is evicted
// (0 or negative disables eviction). The sweep is opportunistic — it
// piggybacks on session opens and lookups, so an evicted-but-idle owner
// costs no background goroutine.
func (o *Owner) SetSessionTTL(d time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ttl = d
	o.nextSweep = time.Time{}
}

// SetMaxSessions changes the open-session bound (default MaxSessions;
// 0 or negative removes it). Opens beyond the bound fail with an
// ErrOverloaded-wrapped error the HTTP server answers 429.
func (o *Owner) SetMaxSessions(n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.maxSess = n
}

// SetMaxInflight changes the admission-control bound on concurrently
// served data-plane exchanges (default DefaultMaxInflight; 0 or
// negative removes it). Safe to call while serving.
func (o *Owner) SetMaxInflight(n int) {
	o.maxInflight.Store(int64(n))
}

// TryAcquire reserves one in-flight exchange slot, refusing when the
// owner is at its admission bound. Callers that get true must Release.
// The reservation happens before any request work — body, decode,
// handler — which is what makes a shed exchange unconditionally safe
// to re-send.
func (o *Owner) TryAcquire() bool {
	n := o.inflight.Add(1)
	if max := o.maxInflight.Load(); max > 0 && n > max {
		o.inflight.Add(-1)
		o.shed.Add(1)
		mOwnerShed.Inc()
		return false
	}
	mOwnerInflight.Set(float64(n))
	return true
}

// Release returns an in-flight exchange slot taken by TryAcquire.
func (o *Owner) Release() {
	mOwnerInflight.Set(float64(o.inflight.Add(-1)))
}

// Shed reports how many exchanges admission control has refused over
// the owner's lifetime.
func (o *Owner) Shed() int64 { return o.shed.Load() }

// SetReplicaID labels this owner process within its list's replica set
// (e.g. "a", "b" — cmd/topk-owner's -replica flag). The label is
// advertised in /stats; it is informational, identifying which of a
// list's interchangeable owners answered.
func (o *Owner) SetReplicaID(id string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.replica = id
}

// Evictions reports how many idle sessions the TTL sweep has reclaimed.
func (o *Owner) Evictions() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.evictions
}

// sweepLocked evicts sessions idle past the TTL. Called with o.mu held,
// rate-limited to once per quarter-TTL so the table scan never dominates
// the hot path. A session evicted while a handler still holds its
// pointer finishes that exchange on the orphaned state; the next
// exchange of the session gets ErrUnknownSession — exactly what a closed
// session gets.
func (o *Owner) sweepLocked(now time.Time) {
	if o.ttl <= 0 || now.Before(o.nextSweep) {
		return
	}
	o.nextSweep = now.Add(o.ttl / 4)
	for sid, s := range o.sessions {
		if idle := now.Sub(s.lastUsed); idle > o.ttl {
			delete(o.sessions, sid)
			o.evictions++
			mOwnerSessEvicted.Inc()
			mOwnerSessionsOpen.Add(-1)
			o.log.Info("session evicted", "sid", sid, "idle", idle)
		}
	}
}

// Open installs fresh protocol state for the session: a new probe
// (zeroed access tally), a fresh seen-position tracker of the given
// kind, and a zero scan cursor. Re-opening an existing session ID
// replaces its state, so a retried open is idempotent. Control-plane —
// never charged to traffic accounting.
func (o *Owner) Open(sid string, kind bestpos.Kind) error {
	if sid == "" {
		return fmt.Errorf("transport: owner %d: empty session ID", o.index)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	now := time.Now()
	o.sweepLocked(now)
	_, existed := o.sessions[sid]
	if !existed && o.maxSess > 0 && len(o.sessions) >= o.maxSess {
		return fmt.Errorf("transport: owner %d: session limit %d reached: %w", o.index, o.maxSess, ErrOverloaded)
	}
	o.sessions[sid] = &ownerSession{
		pr:       access.NewProbe(o.db),
		tr:       bestpos.New(kind, o.n),
		lastUsed: now,
	}
	if !existed {
		mOwnerSessOpened.Inc()
		mOwnerSessionsOpen.Add(1)
	}
	o.log.Debug("session opened", "sid", sid, "reopen", existed)
	return nil
}

// CloseSession releases the session's state. Unknown IDs are a no-op, so
// close is idempotent.
func (o *Owner) CloseSession(sid string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.sessions[sid]; !ok {
		return
	}
	delete(o.sessions, sid)
	mOwnerSessClosed.Inc()
	mOwnerSessionsOpen.Add(-1)
	o.log.Debug("session closed", "sid", sid)
}

// CloseAllSessions releases every open session, returning how many it
// closed — the graceful-shutdown path: after the HTTP server has
// drained, the daemon discards whatever sessions crashed or abandoned
// originators left behind rather than waiting out the TTL.
func (o *Owner) CloseAllSessions() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := len(o.sessions)
	for sid := range o.sessions {
		delete(o.sessions, sid)
		mOwnerSessClosed.Inc()
		mOwnerSessionsOpen.Add(-1)
	}
	if n > 0 {
		o.log.Info("sessions closed at shutdown", "count", n)
	}
	return n
}

// Sessions reports how many sessions are currently open.
func (o *Owner) Sessions() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.sessions)
}

// openAll opens the session at every owner, rolling back the ones
// already opened on partial failure — the shared open path of the
// in-process backends, so their rollback invariant cannot diverge.
func openAll(owners []*Owner, sid string, kind bestpos.Kind) error {
	for _, o := range owners {
		if err := o.Open(sid, kind); err != nil {
			closeAll(owners, sid)
			return err
		}
	}
	return nil
}

// closeAll releases the session at every owner (idempotent per owner).
func closeAll(owners []*Owner, sid string) {
	for _, o := range owners {
		o.CloseSession(sid)
	}
}

// session resolves a session ID, refreshes its idle stamp, and gives the
// TTL sweep its chance to run.
func (o *Owner) session(sid string) (*ownerSession, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	now := time.Now()
	o.sweepLocked(now)
	s, ok := o.sessions[sid]
	if !ok {
		return nil, fmt.Errorf("transport: owner %d: %w %q", o.index, ErrUnknownSession, sid)
	}
	s.lastUsed = now
	return s, nil
}

// Info reports the owner's list metadata — the dial handshake. The
// access tallies are zero: they live per session.
func (o *Owner) Info() OwnerStats {
	o.mu.Lock()
	open, ev, rep := len(o.sessions), o.evictions, o.replica
	o.mu.Unlock()
	st := OwnerStats{
		Index:        o.index,
		N:            o.n,
		M:            o.m,
		MinScore:     o.db.List(0).At(o.n).Score,
		Replica:      rep,
		Codecs:       []string{CodecBinary, CodecJSON},
		OpenSessions: open,
		Evictions:    ev,
	}
	if o.mut != nil {
		st.Mutable = true
		st.Version = o.mut.Version()
	}
	return st
}

// SessionStats reports one session's bookkeeping.
func (o *Owner) SessionStats(sid string) (OwnerStats, error) {
	s, err := o.session(sid)
	if err != nil {
		return OwnerStats{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := o.Info()
	st.Accesses = s.pr.Counts()
	st.Best = s.tr.Best()
	st.Depth = s.depth
	return st, nil
}

// SyncSession applies a session-state delta mirrored from a sibling
// replica: it marks the given positions (single positions and inclusive
// [lo,hi] ranges) seen in the session's tracker and raises the scan
// depth. Marking is idempotent and the depth merge is monotonic, so
// replaying a sync — or receiving one the pinned replica already
// applied — converges instead of corrupting state. Control-plane:
// nothing here touches the access probe, so mirrored state never
// perturbs the accounting the originator's ledger holds authoritative.
func (o *Owner) SyncSession(sid string, positions []int, ranges [][2]int, depth int) error {
	s, err := o.session(sid)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range positions {
		if p >= 1 && p <= o.n {
			s.tr.MarkSeen(p)
		}
	}
	for _, rg := range ranges {
		lo, hi := rg[0], rg[1]
		if lo < 1 {
			lo = 1
		}
		if hi > o.n {
			hi = o.n
		}
		for p := lo; p <= hi; p++ {
			s.tr.MarkSeen(p)
		}
	}
	if depth > s.depth {
		s.depth = depth
	}
	mOwnerSessionSyncs.Inc()
	return nil
}

// SessionState exports a session's replicable protocol state — the seen
// positions compressed into inclusive [lo,hi] ranges, plus the scan
// depth — so a freshly promoted mirror replica can be brought up to the
// pinned replica's state in one SyncSession. The access tally is
// deliberately absent: it is not replicable state (the originator's
// ledger is authoritative in replicated topologies).
func (o *Owner) SessionState(sid string) (ranges [][2]int, depth int, err error) {
	s, err := o.session(sid)
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	start := 0
	for p := 1; p <= o.n; p++ {
		switch {
		case s.tr.Seen(p):
			if start == 0 {
				start = p
			}
		case start != 0:
			ranges = append(ranges, [2]int{start, p - 1})
			start = 0
		}
	}
	if start != 0 {
		ranges = append(ranges, [2]int{start, o.n})
	}
	return ranges, s.depth, nil
}

// Handle serves one request inside the given session. Exchanges of the
// same session are serialized; exchanges of distinct sessions are not. A
// batch request executes atomically: its inner requests run in order
// under one hold of the session mutex, so no other exchange of the same
// session can interleave with a coalesced round.
func (o *Owner) Handle(sid string, req Request) (Response, error) {
	return o.HandleContext(context.Background(), sid, req)
}

// HandleContext is Handle under a caller deadline: the context carries
// the exchange's slice of the originator's remaining query deadline
// (on the HTTP server, parsed off the wire; in-process backends pass
// their query context directly). Handlers whose work scales with the
// list — above, topk, fetch, batch — poll it and abandon the exchange
// with the context's error once the caller is dead, so an owner never
// burns a scan on a query nobody is waiting for. Work already done
// stays done and stays charged, like a batch aborting midway.
func (o *Owner) HandleContext(ctx context.Context, sid string, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r, ok := req.(UpdateReq); ok {
		// Updates are feed-plane, not query-plane: they carry no session
		// (any sid is ignored), fan out to every replica of the list, and
		// must not resolve — or create — per-session protocol state.
		return o.handleUpdate(r)
	}
	s, err := o.session(sid)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return o.dispatch(ctx, s, req)
}

// dispatch routes one request to its handler; the caller holds the
// session mutex.
func (o *Owner) dispatch(ctx context.Context, s *ownerSession, req Request) (Response, error) {
	switch r := req.(type) {
	case SortedReq:
		return o.handleSorted(s, r)
	case LookupReq:
		return o.handleLookup(s, r)
	case ProbeReq:
		return o.handleProbe(s, r)
	case MarkReq:
		return o.handleMark(s, r)
	case TopKReq:
		return o.handleTopK(ctx, s, r)
	case AboveReq:
		return o.handleAbove(ctx, s, r)
	case FetchReq:
		return o.handleFetch(ctx, s, r)
	case BatchReq:
		return o.handleBatch(ctx, s, r)
	case UpdateReq:
		// Reachable only through a batch (HandleContext intercepts bare
		// updates): the feed plane must not ride inside a query session's
		// atomic round, where a replayed batch would defeat the per-feed
		// sequence check.
		return nil, fmt.Errorf("transport: owner %d: updates travel outside query sessions", o.index)
	default:
		return nil, fmt.Errorf("transport: owner %d: unknown request %T", o.index, req)
	}
}

// pollCtx reports the context's error every strideth iteration (i
// counting from anything): the scan handlers' deadline check, cheap
// enough to sit inside per-entry loops.
func pollCtx(ctx context.Context, i int) error {
	const stride = 256
	if i%stride != 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		mOwnerDeadline.Inc()
		return err
	}
	return nil
}

// handleBatch executes a coalesced round's inner requests in order,
// atomically against the session. An inner failure aborts the batch with
// the failing index — work already done stays done (and stays charged),
// exactly as if the messages had traveled one by one and the round had
// aborted midway.
func (o *Owner) handleBatch(ctx context.Context, s *ownerSession, req BatchReq) (Response, error) {
	out := make([]Response, len(req.Reqs))
	for i, r := range req.Reqs {
		if _, ok := r.(BatchReq); ok {
			return nil, fmt.Errorf("transport: owner %d: batches must not nest", o.index)
		}
		if err := ctx.Err(); err != nil {
			mOwnerDeadline.Inc()
			return nil, fmt.Errorf("batch[%d]: %w", i, err)
		}
		resp, err := o.dispatch(ctx, s, r)
		if err != nil {
			return nil, fmt.Errorf("batch[%d]: %w", i, err)
		}
		out[i] = resp
	}
	return BatchResp{Resps: out}, nil
}

// checkPos validates a requested position before it reaches the probe,
// so malformed remote requests surface as errors, not panics.
func (o *Owner) checkPos(p int) error {
	if p < 1 || p > o.n {
		return fmt.Errorf("transport: owner %d: position %d out of range [1,%d]", o.index, p, o.n)
	}
	return nil
}

// checkItem likewise validates an item ID.
func (o *Owner) checkItem(d list.ItemID) error {
	if d < 0 || int(d) >= o.n {
		return fmt.Errorf("transport: owner %d: item %d out of range [0,%d)", o.index, d, o.n)
	}
	return nil
}

// handleSorted serves a sorted access (TA, BPA).
func (o *Owner) handleSorted(s *ownerSession, req SortedReq) (Response, error) {
	if err := o.checkPos(req.Pos); err != nil {
		return nil, err
	}
	return SortedResp{Entry: s.pr.Sorted(0, req.Pos)}, nil
}

// handleLookup serves a random access; the position is shipped only when
// requested (BPA yes, TA no).
func (o *Owner) handleLookup(s *ownerSession, req LookupReq) (Response, error) {
	if err := o.checkItem(req.Item); err != nil {
		return nil, err
	}
	sc, p := s.pr.Random(0, req.Item)
	if req.WantPos {
		return LookupResp{Score: sc, Pos: p, HasPos: true}, nil
	}
	return LookupResp{Score: sc}, nil
}

// bestState reports the session's current best-position score and
// whether the list is fully seen (BPA2 piggyback).
func (o *Owner) bestState(s *ownerSession) (bestScore float64, exhausted bool) {
	bp := s.tr.Best()
	if bp == 0 {
		// Position 1 unseen: no information yet. +Inf is the neutral
		// upper bound under any monotone scoring function.
		return math.Inf(1), false
	}
	// The score at the best position was seen within this session;
	// reading it locally is not a new access (paper Section 4.1).
	return o.db.List(0).At(bp).Score, bp >= o.n
}

// handleProbe serves BPA2's direct access to the first unseen position.
func (o *Owner) handleProbe(s *ownerSession, _ ProbeReq) (Response, error) {
	p := s.tr.Best() + 1
	if p > o.n {
		// Defensive: the originator tracks exhaustion and stops probing;
		// answer with the piggyback only.
		best, _ := o.bestState(s)
		return ProbeResp{BestScore: Upper(best), Exhausted: true, Empty: true}, nil
	}
	e := s.pr.Direct(0, p)
	s.tr.MarkSeen(p)
	best, exhausted := o.bestState(s)
	return ProbeResp{Entry: e, BestScore: Upper(best), Exhausted: exhausted, Pos: p}, nil
}

// handleMark serves BPA2's random access: the owner resolves the item,
// records its position in the session's tracker, and returns score plus
// piggyback. The item's position stays at the owner.
func (o *Owner) handleMark(s *ownerSession, req MarkReq) (Response, error) {
	if err := o.checkItem(req.Item); err != nil {
		return nil, err
	}
	sc, p := s.pr.Random(0, req.Item)
	s.tr.MarkSeen(p)
	best, exhausted := o.bestState(s)
	return MarkResp{Score: sc, BestScore: Upper(best), Exhausted: exhausted, Pos: p}, nil
}

// handleTopK serves TPUT phase 1: the owner reads its K best entries.
func (o *Owner) handleTopK(ctx context.Context, s *ownerSession, req TopKReq) (Response, error) {
	if err := o.checkPos(req.K); err != nil {
		return nil, err
	}
	out := make([]list.Entry, req.K)
	for p := 1; p <= req.K; p++ {
		if err := pollCtx(ctx, p); err != nil {
			return nil, err
		}
		out[p-1] = s.pr.Sorted(0, p)
	}
	s.depth = req.K
	return TopKResp{Entries: out}, nil
}

// scoreSeeker is the optional fast path of the above scan: stripe-backed
// lists resolve the first position whose score falls strictly below a
// threshold by fence-pointer binary search, without loading a single
// block (see internal/store/stripe and ROADMAP 3c).
type scoreSeeker interface {
	SeekScore(t float64) int
}

// handleAbove serves TPUT phase 2: the owner continues its scan past the
// already-sent prefix and returns every entry with score >= T. The read
// that discovers the first score below T is charged — it was performed.
// The deadline poll sits inside the loop because this is the one
// handler whose work can span a whole list tail.
//
// On seek-capable lists the cutoff — the position of that charged
// terminating read — is known up front from the fence index, which
// bounds the scan without touching a block past it and sizes the reply
// exactly. Every read the plain loop would perform still happens, in
// the same order, through the same probe, so the accounting is
// identical by construction (the stripe parity suite pins this).
func (o *Owner) handleAbove(ctx context.Context, s *ownerSession, req AboveReq) (Response, error) {
	if sk, ok := o.db.List(0).(scoreSeeker); ok {
		cut := sk.SeekScore(req.T) // first position with score < T; n+1 when none
		start := s.depth + 1
		end := cut
		if end > o.n {
			end = o.n
		}
		if end < start && start <= o.n {
			// The whole tail is below T: the plain loop still performs
			// (and charges) the one read that discovers it.
			end = start
		}
		var out []list.Entry
		if last := min(cut-1, o.n); last >= start {
			out = make([]list.Entry, 0, last-start+1)
		}
		for p := start; p <= end; p++ {
			if err := pollCtx(ctx, p); err != nil {
				return nil, err
			}
			e := s.pr.Sorted(0, p)
			s.depth = p
			if p < cut {
				out = append(out, e)
			}
		}
		return AboveResp{Entries: out}, nil
	}
	var out []list.Entry
	for p := s.depth + 1; p <= o.n; p++ {
		if err := pollCtx(ctx, p); err != nil {
			return nil, err
		}
		e := s.pr.Sorted(0, p)
		s.depth = p
		if e.Score < req.T {
			break
		}
		out = append(out, e)
	}
	return AboveResp{Entries: out}, nil
}

// handleUpdate applies one feed-plane update batch. After the per-feed
// sequence check — a batch at or below the feed's last applied sequence
// is acknowledged without being re-applied, the idempotency that makes
// client retries and backpressure re-sends safe — the deltas are
// applied atomically to the mutable list, and every standing-query
// filter decides whether the batch is a potential top-k crossing worth
// notifying the coordinator about. Crossing names are sorted so wire
// frames are deterministic.
func (o *Owner) handleUpdate(req UpdateReq) (Response, error) {
	if o.mut == nil {
		return nil, fmt.Errorf("transport: owner %d: %w", o.index, ErrReadOnly)
	}
	if req.Feed == "" {
		return nil, fmt.Errorf("transport: owner %d: update without a feed name", o.index)
	}
	ups := make([]list.Update, len(req.Updates))
	for i, u := range req.Updates {
		ups[i] = list.Update{Item: u.Item, Delta: u.Delta}
	}
	o.liveMu.Lock()
	defer o.liveMu.Unlock()
	if last, ok := o.feeds[req.Feed]; ok && req.Seq <= last {
		return UpdateResp{Applied: false, Version: o.mut.Version()}, nil
	}
	version, err := o.mut.Apply(ups)
	if err != nil {
		return nil, fmt.Errorf("transport: owner %d: %w", o.index, err)
	}
	o.feeds[req.Feed] = req.Seq
	var crossings []string
	for name, f := range o.filters {
		if f.crossed(ups) {
			crossings = append(crossings, name)
		}
	}
	sort.Strings(crossings)
	return UpdateResp{Applied: true, Version: version, Crossings: crossings}, nil
}

// handleFetch serves TPUT phase 3: exact scores for the listed items.
func (o *Owner) handleFetch(ctx context.Context, s *ownerSession, req FetchReq) (Response, error) {
	out := make([]float64, len(req.Items))
	for j, d := range req.Items {
		if err := pollCtx(ctx, j); err != nil {
			return nil, err
		}
		if err := o.checkItem(d); err != nil {
			return nil, err
		}
		out[j], _ = s.pr.Random(0, d)
	}
	return FetchResp{Scores: out}, nil
}
