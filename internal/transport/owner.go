package transport

import (
	"fmt"
	"math"
	"sync"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/list"
)

// OwnerStats is the control-plane bookkeeping of one owner: what the
// originator needs to assemble a Result but that is not protocol traffic
// (see Transport.Stats). MinScore is owner metadata known without a
// charged access, cf. the centralized list floors.
type OwnerStats struct {
	// Index is the list the owner serves.
	Index int `json:"index"`
	// N is the list length.
	N int `json:"n"`
	// M is the number of lists of the owner's database — every owner of
	// a cluster must agree on it.
	M int `json:"m"`
	// MinScore is the score at the last position of the list.
	MinScore float64 `json:"minScore"`
	// Accesses tallies the list accesses since the last Reset.
	Accesses access.Counts `json:"accesses"`
	// Best is the owner-side tracker's current best position.
	Best int `json:"best"`
	// Depth is the deepest sorted position read since the last Reset.
	Depth int `json:"depth"`
}

// Owner is the owner-side half of every backend: the message handlers of
// one list owner, shared verbatim by Loopback, Concurrent and the HTTP
// server so that responses — and therefore the originator's accounting —
// are identical by construction.
//
// An Owner accesses only its own list, through an access.Probe so the
// paper's access metrics fall out exactly as in the centralized
// algorithms, and keeps the owner-side protocol state: the seen-position
// tracker of BPA2 and the scan depth of TPUT. That state is per query;
// Reset prepares the owner for the next one. One owner serves one query
// session at a time (handlers are serialized by a mutex, but the
// protocol state is not keyed by query).
type Owner struct {
	mu    sync.Mutex
	index int
	m     int
	n     int
	db    *list.Database // single-list database over the owned list
	pr    *access.Probe
	tr    bestpos.Tracker
	depth int
}

// NewOwner returns the owner of list index of db, ready for a query with
// the default tracker kind.
func NewOwner(db *list.Database, index int) (*Owner, error) {
	if db == nil {
		return nil, fmt.Errorf("transport: nil database")
	}
	if index < 0 || index >= db.M() {
		return nil, fmt.Errorf("transport: list index %d out of range [0,%d)", index, db.M())
	}
	own, err := list.NewDatabase(db.List(index))
	if err != nil {
		return nil, err
	}
	o := &Owner{index: index, m: db.M(), n: db.N(), db: own}
	o.reset(bestpos.BitArrayKind)
	return o, nil
}

// Reset zeroes the access tally and scan depth and installs a fresh
// seen-position tracker of the given kind: the owner-side start of a new
// query. Control-plane — never charged to traffic accounting.
func (o *Owner) Reset(kind bestpos.Kind) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.reset(kind)
}

func (o *Owner) reset(kind bestpos.Kind) {
	o.pr = access.NewProbe(o.db)
	o.tr = bestpos.New(kind, o.n)
	o.depth = 0
}

// Stats reports the owner's current bookkeeping.
func (o *Owner) Stats() OwnerStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return OwnerStats{
		Index:    o.index,
		N:        o.n,
		M:        o.m,
		MinScore: o.db.List(0).At(o.n).Score,
		Accesses: o.pr.Counts(),
		Best:     o.tr.Best(),
		Depth:    o.depth,
	}
}

// Handle serves one request and returns its response. Handlers are
// serialized per owner; concurrent exchanges with the same owner queue.
func (o *Owner) Handle(req Request) (Response, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch r := req.(type) {
	case SortedReq:
		return o.handleSorted(r)
	case LookupReq:
		return o.handleLookup(r)
	case ProbeReq:
		return o.handleProbe(r)
	case MarkReq:
		return o.handleMark(r)
	case TopKReq:
		return o.handleTopK(r)
	case AboveReq:
		return o.handleAbove(r)
	case FetchReq:
		return o.handleFetch(r)
	default:
		return nil, fmt.Errorf("transport: owner %d: unknown request %T", o.index, req)
	}
}

// checkPos validates a requested position before it reaches the probe,
// so malformed remote requests surface as errors, not panics.
func (o *Owner) checkPos(p int) error {
	if p < 1 || p > o.n {
		return fmt.Errorf("transport: owner %d: position %d out of range [1,%d]", o.index, p, o.n)
	}
	return nil
}

// checkItem likewise validates an item ID.
func (o *Owner) checkItem(d list.ItemID) error {
	if d < 0 || int(d) >= o.n {
		return fmt.Errorf("transport: owner %d: item %d out of range [0,%d)", o.index, d, o.n)
	}
	return nil
}

// handleSorted serves a sorted access (TA, BPA).
func (o *Owner) handleSorted(req SortedReq) (Response, error) {
	if err := o.checkPos(req.Pos); err != nil {
		return nil, err
	}
	return SortedResp{Entry: o.pr.Sorted(0, req.Pos)}, nil
}

// handleLookup serves a random access; the position is shipped only when
// requested (BPA yes, TA no).
func (o *Owner) handleLookup(req LookupReq) (Response, error) {
	if err := o.checkItem(req.Item); err != nil {
		return nil, err
	}
	s, p := o.pr.Random(0, req.Item)
	if req.WantPos {
		return LookupResp{Score: s, Pos: p, HasPos: true}, nil
	}
	return LookupResp{Score: s}, nil
}

// bestState reports the owner's current best-position score and whether
// the list is fully seen (BPA2 piggyback).
func (o *Owner) bestState() (bestScore float64, exhausted bool) {
	bp := o.tr.Best()
	if bp == 0 {
		// Position 1 unseen: no information yet. +Inf is the neutral
		// upper bound under any monotone scoring function.
		return math.Inf(1), false
	}
	// The score at the best position was seen by this owner; reading it
	// locally is not a new access (paper Section 4.1).
	return o.db.List(0).At(bp).Score, bp >= o.n
}

// handleProbe serves BPA2's direct access to the first unseen position.
func (o *Owner) handleProbe(ProbeReq) (Response, error) {
	p := o.tr.Best() + 1
	if p > o.n {
		// Defensive: the originator tracks exhaustion and stops probing;
		// answer with the piggyback only.
		best, _ := o.bestState()
		return ProbeResp{BestScore: Upper(best), Exhausted: true, Empty: true}, nil
	}
	e := o.pr.Direct(0, p)
	o.tr.MarkSeen(p)
	best, exhausted := o.bestState()
	return ProbeResp{Entry: e, BestScore: Upper(best), Exhausted: exhausted}, nil
}

// handleMark serves BPA2's random access: the owner resolves the item,
// records its position locally, and returns score plus piggyback. The
// item's position stays at the owner.
func (o *Owner) handleMark(req MarkReq) (Response, error) {
	if err := o.checkItem(req.Item); err != nil {
		return nil, err
	}
	s, p := o.pr.Random(0, req.Item)
	o.tr.MarkSeen(p)
	best, exhausted := o.bestState()
	return MarkResp{Score: s, BestScore: Upper(best), Exhausted: exhausted}, nil
}

// handleTopK serves TPUT phase 1: the owner reads its K best entries.
func (o *Owner) handleTopK(req TopKReq) (Response, error) {
	if err := o.checkPos(req.K); err != nil {
		return nil, err
	}
	out := make([]list.Entry, req.K)
	for p := 1; p <= req.K; p++ {
		out[p-1] = o.pr.Sorted(0, p)
	}
	o.depth = req.K
	return TopKResp{Entries: out}, nil
}

// handleAbove serves TPUT phase 2: the owner continues its scan past the
// already-sent prefix and returns every entry with score >= T. The read
// that discovers the first score below T is charged — it was performed.
func (o *Owner) handleAbove(req AboveReq) (Response, error) {
	var out []list.Entry
	for p := o.depth + 1; p <= o.n; p++ {
		e := o.pr.Sorted(0, p)
		o.depth = p
		if e.Score < req.T {
			break
		}
		out = append(out, e)
	}
	return AboveResp{Entries: out}, nil
}

// handleFetch serves TPUT phase 3: exact scores for the listed items.
func (o *Owner) handleFetch(req FetchReq) (Response, error) {
	out := make([]float64, len(req.Items))
	for j, d := range req.Items {
		if err := o.checkItem(d); err != nil {
			return nil, err
		}
		out[j], _ = o.pr.Random(0, d)
	}
	return FetchResp{Scores: out}, nil
}
