package transport

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"topk/internal/list"
)

// codecRequests is one of every request shape, including the edge
// values the binary codec must preserve (empty fetch, batches).
func codecRequests() []Request {
	return []Request{
		SortedReq{Pos: 1},
		SortedReq{Pos: 1 << 20},
		LookupReq{Item: 0},
		LookupReq{Item: 12345, WantPos: true},
		ProbeReq{},
		MarkReq{Item: 7},
		TopKReq{K: 64},
		AboveReq{T: 0.123456789123456789},
		AboveReq{T: 0},
		FetchReq{Items: []list.ItemID{0, 1, 99999}},
		FetchReq{Items: nil},
		UpdateReq{Feed: "trades", Seq: 1 << 40, Updates: []ScoreUpdate{{Item: 7, Delta: -0.125}, {Item: 0, Delta: 2.5}}},
		UpdateReq{Feed: "f", Seq: 1, Updates: nil},
		BatchReq{}, // empty batch
		BatchReq{Reqs: []Request{
			SortedReq{Pos: 3},
			LookupReq{Item: 5, WantPos: true},
			ProbeReq{},
			MarkReq{Item: 9},
			TopKReq{K: 2},
			AboveReq{T: 0.5},
			FetchReq{Items: []list.ItemID{4, 2}},
		}},
	}
}

// codecResponses is one of every response shape, including the +Inf
// best-position piggyback the JSON codec needs Upper for and the binary
// codec must carry natively.
func codecResponses() []Response {
	e := list.Entry{Item: 42, Score: 0.7071067811865476}
	return []Response{
		SortedResp{Entry: e},
		LookupResp{Score: 0.25},
		LookupResp{Score: 0.25, Pos: 17, HasPos: true},
		ProbeResp{Entry: e, BestScore: Upper(math.Inf(1))},
		ProbeResp{Entry: e, BestScore: 0.5, Exhausted: true},
		ProbeResp{BestScore: Upper(math.Inf(1)), Exhausted: true, Empty: true},
		MarkResp{Score: 0.125, BestScore: Upper(math.Inf(1))},
		MarkResp{Score: 0.125, BestScore: 0.25, Exhausted: true},
		TopKResp{Entries: []list.Entry{e, {Item: 1, Score: 0.5}}},
		AboveResp{Entries: nil},
		AboveResp{Entries: []list.Entry{e}},
		FetchResp{Scores: []float64{1, 0.5, 0.25}},
		FetchResp{Scores: nil},
		UpdateResp{Applied: true, Version: 9, Crossings: []string{"hot", "warm"}},
		UpdateResp{Applied: false, Version: 1 << 33, Crossings: nil},
		BatchResp{}, // empty batch
		BatchResp{Resps: []Response{
			SortedResp{Entry: e},
			LookupResp{Score: 0.1, Pos: 2, HasPos: true},
			ProbeResp{Entry: e, BestScore: Upper(math.Inf(1))},
			MarkResp{Score: 0.2, BestScore: 0.3},
			TopKResp{Entries: []list.Entry{e}},
			AboveResp{Entries: nil},
			FetchResp{Scores: []float64{0.9}},
		}},
	}
}

// TestBinaryRequestRoundTrip: every request must survive the binary
// codec bit-identically.
func TestBinaryRequestRoundTrip(t *testing.T) {
	for _, req := range codecRequests() {
		enc, err := AppendRequestBinary(nil, req)
		if err != nil {
			t.Fatalf("%#v: encode: %v", req, err)
		}
		dec, err := DecodeRequestBinary(enc)
		if err != nil {
			t.Fatalf("%#v: decode: %v", req, err)
		}
		if !reflect.DeepEqual(dec, req) {
			t.Errorf("binary round-trip changed request:\n got %#v\nwant %#v", dec, req)
		}
	}
}

// TestBinaryResponseRoundTrip: every response must survive the binary
// codec bit-identically, +Inf piggyback included.
func TestBinaryResponseRoundTrip(t *testing.T) {
	for _, resp := range codecResponses() {
		enc, err := AppendResponseBinary(nil, resp)
		if err != nil {
			t.Fatalf("%#v: encode: %v", resp, err)
		}
		dec, err := DecodeResponseBinary(enc)
		if err != nil {
			t.Fatalf("%#v: decode: %v", resp, err)
		}
		if !reflect.DeepEqual(dec, resp) {
			t.Errorf("binary round-trip changed response:\n got %#v\nwant %#v", dec, resp)
		}
	}
}

// TestCodecParityJSONBinary: decoding a message from one codec must
// yield exactly what the other codec yields — the two wires are
// different encodings of the same message, never different messages.
func TestCodecParityJSONBinary(t *testing.T) {
	for _, req := range codecRequests() {
		bin, err := AppendRequestBinary(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		fromBin, err := DecodeRequestBinary(bin)
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		fromJSON, err := decodeRequestJSON(req.Kind(), js)
		if err != nil {
			t.Fatalf("%#v: json decode: %v", req, err)
		}
		if !reflect.DeepEqual(fromBin, fromJSON) {
			t.Errorf("codecs disagree on request:\nbinary %#v\n  json %#v", fromBin, fromJSON)
		}
	}
	for _, resp := range codecResponses() {
		kind, err := responseKind(resp)
		if err != nil {
			t.Fatal(err)
		}
		bin, err := AppendResponseBinary(nil, resp)
		if err != nil {
			t.Fatal(err)
		}
		fromBin, err := DecodeResponseBinary(bin)
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		fromJSON, err := decodeResponseJSON(kind, js)
		if err != nil {
			t.Fatalf("%#v: json decode: %v", resp, err)
		}
		if !reflect.DeepEqual(fromBin, fromJSON) {
			t.Errorf("codecs disagree on response:\nbinary %#v\n  json %#v", fromBin, fromJSON)
		}
	}
}

// TestBatchJSONRoundTrip: the kind-tagged JSON envelope must round-trip
// batches too — it is the fallback wire for coalesced rounds.
func TestBatchJSONRoundTrip(t *testing.T) {
	req := BatchReq{Reqs: []Request{SortedReq{Pos: 2}, LookupReq{Item: 3, WantPos: true}, ProbeReq{}}}
	js, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back BatchReq
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, req) {
		t.Errorf("JSON batch request round-trip: got %#v, want %#v", back, req)
	}
	resp := BatchResp{Resps: []Response{
		SortedResp{Entry: list.Entry{Item: 1, Score: 0.5}},
		LookupResp{Score: 0.25, Pos: 9, HasPos: true},
		ProbeResp{Entry: list.Entry{Item: 2, Score: 0.4}, BestScore: Upper(math.Inf(1))},
	}}
	js, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var backR BatchResp
	if err := json.Unmarshal(js, &backR); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(backR, resp) {
		t.Errorf("JSON batch response round-trip: got %#v, want %#v", backR, resp)
	}
}

// TestBatchScalarsAndReplayability: a batch charges the sum of its inner
// messages, and is replayable only when every member is.
func TestBatchScalarsAndReplayability(t *testing.T) {
	b := BatchReq{Reqs: []Request{
		FetchReq{Items: []list.ItemID{1, 2, 3}}, // 3 scalars, replayable
		SortedReq{Pos: 1},                       // 0 scalars, replayable
	}}
	if got := b.RequestScalars(); got != 3 {
		t.Errorf("batch request scalars = %d, want 3", got)
	}
	if !b.Replayable() {
		t.Error("all-replayable batch not replayable")
	}
	b.Reqs = append(b.Reqs, ProbeReq{})
	if b.Replayable() {
		t.Error("batch containing a probe must not be replayable")
	}
	r := BatchResp{Resps: []Response{
		SortedResp{},                             // 2 scalars
		FetchResp{Scores: []float64{1, 2, 3, 4}}, // 4 scalars
		ProbeResp{BestScore: 1, Empty: true},     // 1 scalar
	}}
	if got := r.ResponseScalars(); got != 7 {
		t.Errorf("batch response scalars = %d, want 7", got)
	}
}

// TestBinaryRejectsMalformed: nested batches, kind mismatches, trailing
// garbage and truncations must error, never panic.
func TestBinaryRejectsMalformed(t *testing.T) {
	nested := BatchReq{Reqs: []Request{BatchReq{Reqs: []Request{ProbeReq{}}}}}
	if _, err := AppendRequestBinary(nil, nested); err == nil {
		t.Error("nested batch encoded")
	}
	ok, err := AppendRequestBinary(nil, SortedReq{Pos: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRequestBinary(append(ok, 0xFF)); err == nil {
		t.Error("trailing byte accepted")
	}
	for cut := 0; cut < len(ok); cut++ {
		if _, err := DecodeRequestBinary(ok[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// A frame claiming more payload than present.
	bogus := []byte{1, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := DecodeRequestBinary(bogus); err == nil {
		t.Error("oversized length prefix accepted")
	}
	// Unknown kind code.
	if _, err := DecodeRequestBinary([]byte{99, 0, 0, 0, 0}); err == nil {
		t.Error("unknown code accepted")
	}
	// A huge batch count over a tiny payload must fail the count check,
	// not allocate.
	huge := []byte{8, 4, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DecodeRequestBinary(huge); err == nil {
		t.Error("bogus batch count accepted")
	}
}

// TestBinarySmallerThanJSON pins the codec's reason to exist at the
// message level: representative hot-path messages must be at least 40%
// smaller in binary than in JSON. (The per-query version over whole
// protocol traces lives in the root package's codec benchmark.)
func TestBinarySmallerThanJSON(t *testing.T) {
	entries := make([]list.Entry, 20)
	for i := range entries {
		entries[i] = list.Entry{Item: list.ItemID(i * 31), Score: 1 / float64(i+2)}
	}
	msgs := []Response{
		SortedResp{Entry: entries[0]},
		LookupResp{Score: 0.123456789, Pos: 4321, HasPos: true},
		ProbeResp{Entry: entries[1], BestScore: 0.987654321},
		MarkResp{Score: 0.5, BestScore: 0.25},
		TopKResp{Entries: entries},
		AboveResp{Entries: entries},
		FetchResp{Scores: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}},
	}
	var jsonBytes, binBytes int
	for _, m := range msgs {
		js, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		bin, err := AppendResponseBinary(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		jsonBytes += len(js)
		binBytes += len(bin)
	}
	if float64(binBytes) > 0.6*float64(jsonBytes) {
		t.Errorf("binary codec %d bytes vs JSON %d: less than 40%% smaller", binBytes, jsonBytes)
	}
}

// FuzzDecodeRequestBinary: arbitrary bytes must never panic the decoder,
// and anything that decodes must re-encode and decode to the same
// message.
func FuzzDecodeRequestBinary(f *testing.F) {
	for _, req := range codecRequests() {
		enc, err := AppendRequestBinary(nil, req)
		if err != nil {
			continue
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequestBinary(data)
		if err != nil {
			return
		}
		enc, err := AppendRequestBinary(nil, req)
		if err != nil {
			t.Fatalf("decoded %#v does not re-encode: %v", req, err)
		}
		back, err := DecodeRequestBinary(enc)
		if err != nil {
			t.Fatalf("re-encoded %#v does not decode: %v", req, err)
		}
		if !reflect.DeepEqual(back, req) {
			t.Fatalf("unstable round-trip: %#v -> %#v", req, back)
		}
	})
}

// FuzzDecodeResponseBinary mirrors the request fuzzer for responses.
func FuzzDecodeResponseBinary(f *testing.F) {
	for _, resp := range codecResponses() {
		enc, err := AppendResponseBinary(nil, resp)
		if err != nil {
			continue
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponseBinary(data)
		if err != nil {
			return
		}
		enc, err := AppendResponseBinary(nil, resp)
		if err != nil {
			t.Fatalf("decoded %#v does not re-encode: %v", resp, err)
		}
		back, err := DecodeResponseBinary(enc)
		if err != nil {
			t.Fatalf("re-encoded %#v does not decode: %v", resp, err)
		}
		if !reflect.DeepEqual(back, resp) {
			t.Fatalf("unstable round-trip: %#v -> %#v", resp, back)
		}
	})
}

// TestMaxSizeBatch: a batch at the MaxBatch bound must round-trip; one
// past it must be rejected by the encoder.
func TestMaxSizeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("large allocation")
	}
	reqs := make([]Request, MaxBatch)
	for i := range reqs {
		reqs[i] = ProbeReq{}
	}
	enc, err := AppendRequestBinary(nil, BatchReq{Reqs: reqs})
	if err != nil {
		t.Fatalf("max-size batch rejected: %v", err)
	}
	dec, err := DecodeRequestBinary(enc)
	if err != nil {
		t.Fatalf("max-size batch decode: %v", err)
	}
	if got := len(dec.(BatchReq).Reqs); got != MaxBatch {
		t.Fatalf("max-size batch decoded to %d requests", got)
	}
	if _, err := AppendRequestBinary(nil, BatchReq{Reqs: append(reqs, ProbeReq{})}); err == nil {
		t.Error("over-limit batch encoded")
	}
}
