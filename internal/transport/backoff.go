package transport

import (
	"context"
	"math/rand/v2"
	"time"
)

// Exponential backoff with full jitter for the retry paths. One
// immediate retry was fine when the only failure mode was a dead
// process — the sibling answered instantly — but under overload or a
// flapping network an immediate identical re-send is exactly the wrong
// reflex: every client re-offers its load at the same instant and the
// congestion that failed the first attempt fails the second. Full
// jitter (sleep a uniform draw from (0, min(cap, base<<attempt)])
// decorrelates the retriers; the AWS-style analysis shows it reaches a
// contended resource as fast as exponential backoff while spreading
// the arrivals almost uniformly.

// DefaultBackoffBase is the upper bound of the first retry's jittered
// sleep. Small: the common transient (one lost connection to a live
// replica) deserves a near-immediate second attempt.
const DefaultBackoffBase = 2 * time.Millisecond

// DefaultBackoffCap bounds the jitter window however many attempts
// have failed, so a long retry budget degrades into a steady paced
// trickle instead of multi-second dead air before a typed error.
const DefaultBackoffCap = 250 * time.Millisecond

// backoff is a stateless full-jitter policy: delay(a) draws the sleep
// before retry attempt a (a >= 1). The zero value disables sleeping —
// the pre-backoff immediate-retry behaviour.
type backoff struct {
	base time.Duration // first window; <= 0 disables
	cap  time.Duration // largest window
}

// defaultBackoff resolves the dial-config knobs: zero means the
// defaults, negative base disables backoff entirely.
func defaultBackoff(base, cap time.Duration) backoff {
	switch {
	case base == 0:
		base = DefaultBackoffBase
	case base < 0:
		return backoff{}
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	if cap < base {
		cap = base
	}
	return backoff{base: base, cap: cap}
}

// delay returns the jittered sleep before retry attempt a (the first
// retry is a=1). Never zero when armed — two identical attempts must
// never fire back-to-back — and never above the cap: the window is
// min(cap, base<<(a-1)) with the shift clamped against overflow, and
// the draw is uniform over (0, window].
func (b backoff) delay(a int) time.Duration {
	if b.base <= 0 {
		return 0
	}
	window := b.cap
	if shift := a - 1; shift >= 0 && shift < 62 {
		if w := b.base << shift; w > 0 && w < window {
			window = w
		}
	}
	if window < 1 {
		window = 1
	}
	return 1 + time.Duration(rand.Int64N(int64(window)))
}

// sleepCtx blocks for d or until ctx is done, whichever is first,
// returning the context's error when it cut the sleep short. A
// non-positive d only checks the context.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
