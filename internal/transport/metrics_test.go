package transport

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"topk/internal/obs"
)

// TestMetricsExposition: a real owner handler serves /metrics, the
// scrape is valid Prometheus text exposition, and driving traffic over
// the wire moves both the owner- and client-side metric families (the
// test process hosts both ends, and the registry is process-wide).
func TestMetricsExposition(t *testing.T) {
	prev := obs.Default.Enabled()
	obs.Default.SetEnabled(true)
	t.Cleanup(func() { obs.Default.SetEnabled(prev) })

	db := testDB(t)
	urls, _ := startHTTPOwners(t, db)
	hc, err := DialOwners(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	ctx := context.Background()

	served := obs.GetCounter("topk_owner_exchanges_total", "Data-plane exchanges served, by message kind.", obs.Labels{"kind": string(KindSorted)})
	opened := obs.GetCounter("topk_owner_sessions_opened_total", "Sessions opened over the owner's lifetime.", nil)
	servedBefore, openedBefore := served.Value(), opened.Value()

	s := open(t, hc)
	if _, err := s.Do(ctx, 0, SortedReq{Pos: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do(ctx, 1, SortedReq{Pos: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if got := served.Value() - servedBefore; got != 2 {
		t.Errorf("sorted exchanges counter moved by %d, want 2", got)
	}
	if got := opened.Value() - openedBefore; got < int64(db.M()) {
		t.Errorf("sessions-opened counter moved by %d, want >= %d (one per owner)", got, db.M())
	}

	resp, err := http.Get(urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("exposition is malformed: %v\n%s", err, body)
	}
	for _, want := range []string{
		"topk_owner_exchanges_total", "topk_owner_sessions_open",
		"topk_owner_wire_bytes_total", "topk_client_exchanges_total",
		"topk_client_exchange_seconds_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition is missing %s", want)
		}
	}

	// The JSON snapshot serves the same families.
	resp, err = http.Get(urls[0] + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	jbody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var samples []obs.Sample
	if err := json.Unmarshal(jbody, &samples); err != nil {
		t.Fatalf("JSON snapshot: %v", err)
	}
	if len(samples) == 0 {
		t.Error("JSON snapshot is empty")
	}
}

// TestMetricsDisabledFrozen: with the registry off, wire traffic leaves
// every handle untouched — the off switch is what the overhead
// benchmark's baseline relies on.
func TestMetricsDisabledFrozen(t *testing.T) {
	prev := obs.Default.Enabled()
	obs.Default.SetEnabled(false)
	t.Cleanup(func() { obs.Default.SetEnabled(prev) })

	db := testDB(t)
	urls, _ := startHTTPOwners(t, db)
	hc, err := DialOwners(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	served := obs.GetCounter("topk_owner_exchanges_total", "Data-plane exchanges served, by message kind.", obs.Labels{"kind": string(KindSorted)})
	before := served.Value()
	s := open(t, hc)
	if _, err := s.Do(context.Background(), 0, SortedReq{Pos: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if got := served.Value(); got != before {
		t.Errorf("disabled registry still counted: %d -> %d", before, got)
	}
}
