package transport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"topk/internal/bestpos"
	"topk/internal/list"
)

// The HTTP backend: a real owner server (one list per process) and an
// originator client speaking a small JSON protocol:
//
//	POST /rpc/{kind}  one exchange; body and response are the message
//	                  structs of this package
//	POST /reset       control-plane: start a new query session
//	GET  /stats       control-plane: OwnerStats (also the dial handshake)
//	GET  /healthz     liveness
//
// encoding/json renders float64s in their shortest round-tripping form,
// so scores survive the wire bit-identically and the parity suite can
// hold HTTP to the same answers and accounting as the in-process
// backends. Non-finite list scores are not supported on this backend
// (JSON has no infinities); the +Inf best-position piggyback, which is
// protocol vocabulary rather than list data, is handled by Upper.

// Server is one list owner behind HTTP. Wrap Handler in an http.Server
// (or httptest.Server); cmd/topk-owner is the standalone binary.
type Server struct {
	owner *Owner
	mux   *http.ServeMux
}

// NewServer returns the HTTP owner of list index of db.
func NewServer(db *list.Database, index int) (*Server, error) {
	o, err := NewOwner(db, index)
	if err != nil {
		return nil, err
	}
	s := &Server{owner: o, mux: http.NewServeMux()}
	s.mux.HandleFunc("/rpc/", s.handleRPC)
	s.mux.HandleFunc("/reset", s.handleReset)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// httpError is the uniform error payload.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // status line already out
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, httpError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, s.owner.Stats())
}

// resetBody is the /reset request payload.
type resetBody struct {
	Tracker uint8 `json:"tracker"`
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var body resetBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad reset body: %v", err)
		return
	}
	kind := bestpos.Kind(body.Tracker)
	found := false
	for _, k := range bestpos.Kinds() {
		if k == kind {
			found = true
			break
		}
	}
	if !found {
		writeError(w, http.StatusBadRequest, "unknown tracker kind %d", body.Tracker)
		return
	}
	s.owner.Reset(kind)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleRPC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	kind := Kind(strings.TrimPrefix(r.URL.Path, "/rpc/"))
	req, err := decodeRequest(kind, r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.owner.Handle(req)
	if err != nil {
		// Owner errors are malformed requests (bad position, bad item),
		// the caller's fault.
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeRequest unmarshals the body of a /rpc/{kind} call.
func decodeRequest(kind Kind, body io.Reader) (Request, error) {
	dec := json.NewDecoder(body)
	switch kind {
	case KindSorted:
		var req SortedReq
		return req, decodeInto(dec, &req)
	case KindLookup:
		var req LookupReq
		return req, decodeInto(dec, &req)
	case KindProbe:
		var req ProbeReq
		return req, decodeInto(dec, &req)
	case KindMark:
		var req MarkReq
		return req, decodeInto(dec, &req)
	case KindTopK:
		var req TopKReq
		return req, decodeInto(dec, &req)
	case KindAbove:
		var req AboveReq
		return req, decodeInto(dec, &req)
	case KindFetch:
		var req FetchReq
		return req, decodeInto(dec, &req)
	default:
		return nil, fmt.Errorf("transport: unknown request kind %q", kind)
	}
}

func decodeInto(dec *json.Decoder, v any) error {
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("transport: bad request body: %w", err)
	}
	return nil
}

// decodeResponse unmarshals the response of a /rpc/{kind} call.
func decodeResponse(kind Kind, body io.Reader) (Response, error) {
	dec := json.NewDecoder(body)
	switch kind {
	case KindSorted:
		var resp SortedResp
		return resp, decodeInto(dec, &resp)
	case KindLookup:
		var resp LookupResp
		return resp, decodeInto(dec, &resp)
	case KindProbe:
		var resp ProbeResp
		return resp, decodeInto(dec, &resp)
	case KindMark:
		var resp MarkResp
		return resp, decodeInto(dec, &resp)
	case KindTopK:
		var resp TopKResp
		return resp, decodeInto(dec, &resp)
	case KindAbove:
		var resp AboveResp
		return resp, decodeInto(dec, &resp)
	case KindFetch:
		var resp FetchResp
		return resp, decodeInto(dec, &resp)
	default:
		return nil, fmt.Errorf("transport: unknown response kind %q", kind)
	}
}

// HTTPClient is the originator side of the HTTP backend: one base URL
// per owner, exchanges as POSTs, batches fanned out with one goroutine
// per addressed owner. Elapsed accumulates real time the way the
// Concurrent backend accumulates virtual time: a batch costs its slowest
// owner, not the sum.
type HTTPClient struct {
	urls []string
	hc   *http.Client
	n    int

	mu      sync.Mutex
	elapsed time.Duration
}

// NormalizeOwnerURL turns a host:port (or full URL) into the base URL of
// an owner server.
func NormalizeOwnerURL(s string) string {
	s = strings.TrimSuffix(strings.TrimSpace(s), "/")
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}

// DefaultTimeout bounds each exchange of the default HTTP client: an
// owner that hangs mid-query must error the run, not stall the
// originator forever. Generous, because a TPUT phase-2 response can
// carry a whole list tail.
const DefaultTimeout = 30 * time.Second

// Dial connects to the owner servers — urls[i] must serve list i — and
// validates the cluster: every owner must report its expected list
// index, the shared list length, and a database of exactly len(urls)
// lists. A nil client gets a per-exchange DefaultTimeout; pass an
// explicit client to change that.
func Dial(urls []string, hc *http.Client) (*HTTPClient, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("transport: no owner URLs")
	}
	if hc == nil {
		hc = &http.Client{Timeout: DefaultTimeout}
	}
	t := &HTTPClient{urls: make([]string, len(urls)), hc: hc}
	for i, u := range urls {
		t.urls[i] = NormalizeOwnerURL(u)
	}
	for i := range t.urls {
		st, err := t.Stats(i)
		if err != nil {
			return nil, fmt.Errorf("transport: owner %d (%s): %w", i, t.urls[i], err)
		}
		if st.Index != i {
			return nil, fmt.Errorf("transport: owner %d (%s) serves list %d; order --owners by list index",
				i, t.urls[i], st.Index)
		}
		if st.M != len(urls) {
			return nil, fmt.Errorf("transport: owner %d (%s) belongs to a database of %d lists, cluster has %d owners",
				i, t.urls[i], st.M, len(urls))
		}
		if i == 0 {
			t.n = st.N
		} else if st.N != t.n {
			return nil, fmt.Errorf("transport: owner %d (%s) has %d items, owner 0 has %d",
				i, t.urls[i], st.N, t.n)
		}
	}
	return t, nil
}

// M returns the number of owners.
func (t *HTTPClient) M() int { return len(t.urls) }

// N returns the shared list length.
func (t *HTTPClient) N() int { return t.n }

func (t *HTTPClient) checkOwner(owner int) error {
	if owner < 0 || owner >= len(t.urls) {
		return fmt.Errorf("transport: owner %d out of range [0,%d)", owner, len(t.urls))
	}
	return nil
}

// post sends a JSON POST and decodes the reply into out (when non-nil).
func (t *HTTPClient) post(url string, body any, decode func(io.Reader) error) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("transport: encode request: %w", err)
	}
	resp, err := t.hc.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return remoteError(resp)
	}
	if decode != nil {
		return decode(resp.Body)
	}
	return nil
}

// remoteError lifts a non-200 reply into an error.
func remoteError(resp *http.Response) error {
	var body httpError
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err == nil && body.Error != "" {
		return fmt.Errorf("transport: remote: %s", body.Error)
	}
	return fmt.Errorf("transport: remote status %s", resp.Status)
}

// exchange performs one uninstrumented request/response round-trip.
func (t *HTTPClient) exchange(owner int, req Request) (Response, error) {
	var out Response
	err := t.post(t.urls[owner]+"/rpc/"+string(req.Kind()), req, func(body io.Reader) error {
		var derr error
		out, derr = decodeResponse(req.Kind(), body)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Do performs one exchange and charges its real round-trip time.
func (t *HTTPClient) Do(owner int, req Request) (Response, error) {
	if err := t.checkOwner(owner); err != nil {
		return nil, err
	}
	start := time.Now()
	resp, err := t.exchange(owner, req)
	if err != nil {
		return nil, err
	}
	t.addElapsed(time.Since(start))
	return resp, nil
}

func (t *HTTPClient) addElapsed(d time.Duration) {
	t.mu.Lock()
	t.elapsed += d
	t.mu.Unlock()
}

// DoAll fans the calls out with one goroutine per addressed owner, each
// owner's calls in submission order, and charges the slowest owner's
// serialized time.
func (t *HTTPClient) DoAll(calls []Call) ([]Response, error) {
	for _, c := range calls {
		if err := t.checkOwner(c.Owner); err != nil {
			return nil, err
		}
	}
	byOwner := make(map[int][]int)
	for idx, c := range calls {
		byOwner[c.Owner] = append(byOwner[c.Owner], idx)
	}
	out := make([]Response, len(calls))
	errs := make([]error, len(calls))
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		slowest time.Duration
	)
	for owner, idxs := range byOwner {
		wg.Add(1)
		go func(owner int, idxs []int) {
			defer wg.Done()
			start := time.Now()
			for _, idx := range idxs {
				resp, err := t.exchange(owner, calls[idx].Req)
				if err != nil {
					errs[idx] = err
					return
				}
				out[idx] = resp
			}
			mu.Lock()
			if d := time.Since(start); d > slowest {
				slowest = d
			}
			mu.Unlock()
		}(owner, idxs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	t.addElapsed(slowest)
	return out, nil
}

// Reset starts a new query session at every owner.
func (t *HTTPClient) Reset(kind bestpos.Kind) error {
	for i, u := range t.urls {
		if err := t.post(u+"/reset", resetBody{Tracker: uint8(kind)}, nil); err != nil {
			return fmt.Errorf("transport: reset owner %d: %w", i, err)
		}
	}
	return nil
}

// Stats reports an owner's bookkeeping.
func (t *HTTPClient) Stats(owner int) (OwnerStats, error) {
	if err := t.checkOwner(owner); err != nil {
		return OwnerStats{}, err
	}
	resp, err := t.hc.Get(t.urls[owner] + "/stats")
	if err != nil {
		return OwnerStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return OwnerStats{}, remoteError(resp)
	}
	var st OwnerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return OwnerStats{}, fmt.Errorf("transport: decode stats: %w", err)
	}
	return st, nil
}

// Elapsed returns the real time spent in exchanges so far.
func (t *HTTPClient) Elapsed() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.elapsed
}

// Close releases idle connections.
func (t *HTTPClient) Close() error {
	t.hc.CloseIdleConnections()
	return nil
}
