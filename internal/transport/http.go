package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"topk/internal/bestpos"
	"topk/internal/list"
	"topk/internal/obs"
)

// The HTTP backend: a real owner server (one list per process) and an
// originator client. Every data-plane message carries its query session
// ID in the `sid` query parameter, so one owner serves any number of
// concurrent originators:
//
//	POST /session/open   control-plane: install fresh per-session state
//	                     {sid, tracker}; idempotent per sid
//	POST /session/close  control-plane: release a session's state {sid}
//	POST /session/sync   control-plane: apply a session-state delta
//	                     mirrored from a sibling replica {sid, positions,
//	                     ranges, depth}; idempotent, never charged
//	GET  /session/state?sid=...  control-plane: export a session's
//	                     replicable state (seen-position ranges + scan
//	                     depth) for mirror promotion
//	POST /rpc/{kind}?sid=...  one exchange; body and response are the
//	                     message structs of this package, encoded by the
//	                     negotiated wire codec (kind "batch" carries a
//	                     coalesced round for this owner)
//	GET  /stats?sid=...  control-plane: the session's OwnerStats;
//	                     without sid, the owner's list metadata
//	                     (the dial handshake, which also advertises the
//	                     wire codecs the owner speaks and the owner's
//	                     replica identity)
//	POST /filter/set     live control-plane: install one standing
//	                     query's notification filter {query, slack,
//	                     watch} (see Owner.SetFilter)
//	POST /filter/clear   live control-plane: remove a filter {query}
//	POST /reset          deprecated no-op, kept for pre-session clients
//	GET  /healthz        liveness — also what the client's background
//	                     health prober polls in replicated topologies
//
// The /rpc data plane speaks two codecs, negotiated via Content-Type:
// the length-prefixed little-endian binary codec (codec.go) is the
// default whenever every owner advertises it in the dial handshake, and
// JSON remains the fallback for old owners and the debugging surface
// (HTTPClient.SetWireFormat). The server answers in the codec the
// request arrived in, so one owner serves binary and JSON clients at
// once; error payloads are always JSON. encoding/json renders float64s
// in their shortest round-tripping form and the binary codec ships raw
// IEEE-754 bits, so scores survive either wire bit-identically and the
// parity suite can hold HTTP to the same answers and accounting as the
// in-process backends. Non-finite list scores are not supported on the
// JSON codec (JSON has no infinities); the +Inf best-position
// piggyback, which is protocol vocabulary rather than list data, is
// handled there by Upper — the binary codec carries it natively.
//
// The client side dials a Topology rather than a flat URL list: every
// list may be served by several replica owner processes (topology.go).
// Stateless exchanges are routed per-call by the configured
// RoutingPolicy and fail over between replicas mid-query; sessionful
// exchanges pin each session to one replica per list and surface
// OwnerFailedError when it dies.

// Server is one list owner behind HTTP. Wrap Handler in an http.Server
// (or httptest.Server); cmd/topk-owner is the standalone binary.
type Server struct {
	owner *Owner
	mux   *http.ServeMux
}

// NewServer returns the HTTP owner of list index of db.
func NewServer(db *list.Database, index int) (*Server, error) {
	o, err := NewOwner(db, index)
	if err != nil {
		return nil, err
	}
	s := &Server{owner: o, mux: http.NewServeMux()}
	s.mux.HandleFunc("/rpc/", s.handleRPC)
	s.mux.HandleFunc("/session/open", s.handleOpen)
	s.mux.HandleFunc("/session/close", s.handleClose)
	s.mux.HandleFunc("/session/sync", s.handleSync)
	s.mux.HandleFunc("/session/state", s.handleState)
	s.mux.HandleFunc("/filter/set", s.handleFilterSet)
	s.mux.HandleFunc("/filter/clear", s.handleFilterClear)
	s.mux.HandleFunc("/reset", s.handleReset)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	// The process-wide metrics registry: Prometheus text exposition by
	// default, the JSON snapshot under ?format=json.
	s.mux.Handle("/metrics", obs.Default.Handler())
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Owner returns the owner behind the server, for white-box inspection in
// tests (open session counts).
func (s *Server) Owner() *Owner { return s.owner }

// HeaderBudgetMs carries an exchange's deadline budget on the wire:
// the milliseconds of the originator's query deadline this exchange
// may spend, measured from when the request was sent. Relative rather
// than an absolute deadline so it survives clock skew between
// originator and owner; the server turns it into a context deadline so
// handlers abandon work for callers that have already given up.
const HeaderBudgetMs = "X-Topk-Budget-Ms"

// HeaderRetryAfterMs is the owner's backpressure hint on a 429 shed
// response: how many milliseconds the client should wait before
// re-sending. Part of the public retry contract — a shed exchange did
// no work, so re-sending after the pause is always safe, whatever the
// request kind.
const HeaderRetryAfterMs = "X-Topk-Retry-After-Ms"

// HeaderFrameCRC carries the IEEE CRC-32 of a data-plane response body
// (lower-case hex). HTTP alone does not protect the frame end to end —
// a proxy, a torn connection or flipped bits can hand the client a
// body that still decodes into plausible protocol state. The client
// verifies the checksum before decoding, so wire corruption surfaces
// as a typed, retryable transport error instead of silently wrong
// answers.
const HeaderFrameCRC = "X-Topk-Frame-Crc"

// errCorruptFrame classifies a response whose body failed its checksum
// (or could not be read or decoded at all): the exchange reached the
// owner but its answer was damaged in flight. Transient — replayable
// requests re-send, non-replayable sessionful ones hand off to the
// mirror whose state excludes the damaged exchange.
var errCorruptFrame = errors.New("transport: corrupt response frame")

// httpError is the uniform error payload.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // status line already out
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, httpError{Error: fmt.Sprintf(format, args...)})
}

// writeShed answers a request refused by admission control: 429 plus
// the retry-after hint clients treat as backpressure.
func writeShed(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set(HeaderRetryAfterMs, strconv.FormatInt(DefaultRetryAfter.Milliseconds(), 10))
	writeError(w, http.StatusTooManyRequests, format, args...)
}

// writeFrame writes a data-plane response with its end-to-end frame
// checksum (HeaderFrameCRC).
func writeFrame(w http.ResponseWriter, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set(HeaderFrameCRC, strconv.FormatUint(uint64(crc32.ChecksumIEEE(body)), 16))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	sid := r.URL.Query().Get("sid")
	if sid == "" {
		// The dial handshake: list metadata, no session state.
		writeJSON(w, http.StatusOK, s.owner.Info())
		return
	}
	st, err := s.owner.SessionStats(sid)
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// statusFor maps an owner error to its HTTP status: unknown sessions
// are 404 (gone, not malformed), an expired deadline budget or vanished
// caller is 504 (the owner abandoned the work, nobody's fault), an
// overloaded owner is 429 (backpressure, safe to re-send), everything
// else a caller-fault 400.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownSession):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	}
	return http.StatusBadRequest
}

// sessionBody is the /session/open and /session/close request payload.
type sessionBody struct {
	SID     string `json:"sid"`
	Tracker uint8  `json:"tracker"`
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var body sessionBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad session body: %v", err)
		return
	}
	kind := bestpos.Kind(body.Tracker)
	found := false
	for _, k := range bestpos.Kinds() {
		if k == kind {
			found = true
			break
		}
	}
	if !found {
		writeError(w, http.StatusBadRequest, "unknown tracker kind %d", body.Tracker)
		return
	}
	if body.SID == "" {
		writeError(w, http.StatusBadRequest, "empty session ID")
		return
	}
	if err := s.owner.Open(body.SID, kind); err != nil {
		// The session limit is owner overload, not a malformed request:
		// shed with the retry-after backpressure hint.
		writeShed(w, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var body sessionBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad session body: %v", err)
		return
	}
	s.owner.CloseSession(body.SID)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// syncBody is the /session/sync request payload and the /session/state
// response: the replicable state of one (session, list) pair. Per-
// exchange deltas travel as single Positions; a full-state promotion
// ships the compressed seen-position Ranges ([lo,hi] inclusive). Depth
// is the scan cursor, merged monotonically.
type syncBody struct {
	SID       string   `json:"sid"`
	Positions []int    `json:"positions,omitempty"`
	Ranges    [][2]int `json:"ranges,omitempty"`
	Depth     int      `json:"depth,omitempty"`
}

// handleSync applies a mirrored session-state delta (see Owner.SyncSession).
func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var body syncBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad sync body: %v", err)
		return
	}
	if body.SID == "" {
		writeError(w, http.StatusBadRequest, "empty session ID")
		return
	}
	if err := s.owner.SyncSession(body.SID, body.Positions, body.Ranges, body.Depth); err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleState exports a session's replicable state for mirror promotion
// (see Owner.SessionState).
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	sid := r.URL.Query().Get("sid")
	if sid == "" {
		writeError(w, http.StatusBadRequest, "missing sid parameter")
		return
	}
	ranges, depth, err := s.owner.SessionState(sid)
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, syncBody{SID: sid, Ranges: ranges, Depth: depth})
}

// filterBody is the /filter/set and /filter/clear request payload: one
// standing query's notification filter (see Owner.SetFilter). Clear
// reads only Query.
type filterBody struct {
	Query string        `json:"query"`
	Slack float64       `json:"slack,omitempty"`
	Watch []list.ItemID `json:"watch,omitempty"`
}

// handleFilterSet installs a standing-query notification filter —
// live-plane control traffic, never charged to query accounting.
func (s *Server) handleFilterSet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var body filterBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad filter body: %v", err)
		return
	}
	if err := s.owner.SetFilter(body.Query, body.Slack, body.Watch); err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleFilterClear removes a standing-query filter (idempotent).
func (s *Server) handleFilterClear(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var body filterBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad filter body: %v", err)
		return
	}
	s.owner.ClearFilter(body.Query)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReset is the pre-session control plane: it used to wipe the
// owner's single global query session. Owner state is keyed by session
// ID now, so there is nothing to reset. The endpoint stays as an
// acknowledged no-op so old control planes don't hard-fail on 404 —
// their data-plane calls still get a clear "missing sid" 400 telling
// them to upgrade; it never touches live sessions.
func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	io.Copy(io.Discard, io.LimitReader(r.Body, 4096))
	writeJSON(w, http.StatusOK, map[string]string{"status": "deprecated no-op; sessions are keyed by sid"})
}

// maxRPCBody bounds a data-plane request body. Generous: the largest
// legitimate request is a TPUT phase-3 fetch of every item.
const maxRPCBody = 16 << 20

// appendAll reads r to EOF into dst — the pooled-buffer replacement for
// io.ReadAll on the hot path.
func appendAll(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// countingWriter counts response-body bytes for the wire-bytes
// metrics; the data plane writes bodies in one Write either way.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleRPC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	sid := r.URL.Query().Get("sid")
	if sid == "" {
		writeError(w, http.StatusBadRequest, "missing sid parameter (open a session first)")
		return
	}
	kind := Kind(strings.TrimPrefix(r.URL.Path, "/rpc/"))
	// Admission control, before the body is read or any work done: a
	// shed exchange ran nothing, which is what makes the 429 safe to
	// re-send even for non-replayable kinds.
	if !s.owner.TryAcquire() {
		writeShed(w, "transport: %v: %s exchange shed", ErrOverloaded, kind)
		return
	}
	defer s.owner.Release()
	// The exchange's deadline budget: the request context already dies
	// with the caller's connection; the wire budget additionally bounds
	// it to the slice of the originator's query deadline this exchange
	// was given, so a scan is abandoned once nobody can use its result.
	ctx := r.Context()
	if v, err := strconv.ParseInt(r.Header.Get(HeaderBudgetMs), 10, 64); err == nil && v > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(v)*time.Millisecond)
		defer cancel()
	}
	cw := &countingWriter{ResponseWriter: w}
	w = cw
	start := time.Now()
	buf := getBuf()
	defer putBuf(buf)
	// Read one byte past the limit so an oversize body is a clear 413,
	// not a truncated-frame 400 that reads like corruption.
	body, err := appendAll(*buf, io.LimitReader(r.Body, maxRPCBody+1))
	*buf = body
	if err != nil {
		writeError(w, http.StatusBadRequest, "transport: read request body: %v", err)
		return
	}
	if len(body) > maxRPCBody {
		writeError(w, http.StatusRequestEntityTooLarge, "transport: request body exceeds %d bytes", maxRPCBody)
		return
	}
	// The request's Content-Type selects the codec; the response mirrors
	// it, so binary and JSON clients share one owner. Errors are always
	// JSON — they are control-plane, and the client's error path predates
	// the binary codec.
	binaryWire := r.Header.Get("Content-Type") == ContentTypeBinary
	var req Request
	if binaryWire {
		req, err = DecodeRequestBinary(body)
		if err == nil && req.Kind() != kind {
			err = fmt.Errorf("transport: frame kind %q does not match path kind %q", req.Kind(), kind)
		}
	} else {
		req, err = decodeRequestJSON(kind, body)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Per-kind serving metrics: charged after the response is written,
	// on the kind the wire actually carried. Never visible to the
	// paper's accounting — the probe's tally is computed inside the
	// handler exactly as before.
	served := false
	defer func() {
		mOwnerWireBytes.add(binaryWire, int64(len(body)), cw.n)
		if !served {
			if c := mOwnerExchangeErrs[kind]; c != nil {
				c.Inc()
			}
			return
		}
		mOwnerExchanges[kind].Inc()
		mOwnerExchangeSec[kind].Observe(time.Since(start).Seconds())
	}()
	resp, err := s.owner.HandleContext(ctx, sid, req)
	if err != nil {
		// Owner errors are malformed requests (bad position, bad item),
		// unknown sessions, or an abandoned deadline budget — statusFor
		// tells the client which (only the last is worth a retry, and
		// only with time left).
		writeError(w, statusFor(err), "%v", err)
		return
	}
	out := getBuf()
	defer putBuf(out)
	var enc []byte
	ct := ContentTypeJSON
	if binaryWire {
		enc, err = AppendResponseBinary(*out, resp)
		ct = ContentTypeBinary
	} else {
		enc, err = json.Marshal(resp)
	}
	*out = enc
	if err != nil {
		writeError(w, http.StatusInternalServerError, "transport: encode response: %v", err)
		return
	}
	served = true
	writeFrame(w, ct, enc)
}

// decodeRequestJSON unmarshals the JSON body of a /rpc/{kind} call.
// Batches are handled here (one nesting level); the shared per-kind
// table rejects nested ones.
func decodeRequestJSON(kind Kind, body []byte) (Request, error) {
	if kind == KindBatch {
		var req BatchReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("transport: bad request body: %w", err)
		}
		return req, nil
	}
	return UnmarshalRequestJSON(kind, body)
}

// decodeResponseJSON unmarshals the JSON response of a /rpc/{kind} call.
func decodeResponseJSON(kind Kind, body []byte) (Response, error) {
	if kind == KindBatch {
		var resp BatchResp
		if err := json.Unmarshal(body, &resp); err != nil {
			return nil, fmt.Errorf("transport: bad message body: %w", err)
		}
		return resp, nil
	}
	return UnmarshalResponseJSON(kind, body)
}

// WireFormat selects the /rpc data-plane codec of an HTTPClient.
type WireFormat uint8

const (
	// WireAuto uses the binary codec when every owner advertised it in
	// the dial handshake, JSON otherwise. The default.
	WireAuto WireFormat = iota
	// WireJSON forces the JSON codec — the debugging surface, and the
	// escape hatch for owners that mis-advertise.
	WireJSON
	// WireBinary forces the binary codec even against owners that did
	// not advertise it (their requests will fail with 400s).
	WireBinary
)

// DialConfig is the declarative shape of a cluster connection: the
// replica topology, the routing policy, the health-check cadence and the
// per-request timeout/retry budget. The zero value of every field but
// Topology is a sensible default.
type DialConfig struct {
	// Topology maps every list to its replica URLs; required.
	Topology Topology
	// Client is the underlying http.Client; nil gets a pooled transport
	// tuned for many concurrent originators against few owners.
	Client *http.Client
	// Policy routes each stateless exchange (and chooses the replica a
	// session pins its sessionful traffic to). Default RoutePrimary.
	Policy RoutingPolicy
	// HealthInterval is the background prober's cadence. 0 means
	// DefaultHealthInterval; negative disables the prober (the data
	// plane still demotes replicas that fail exchanges, but nothing
	// restores them). The prober runs only for replicated topologies —
	// a flat cluster has no routing choice for it to inform.
	HealthInterval time.Duration
	// RequestTimeout bounds each HTTP attempt. 0 means DefaultTimeout.
	RequestTimeout time.Duration
	// Retries is the number of extra attempts a replayable exchange may
	// spend on transient failures — against a sibling replica when one
	// is routable, the same replica otherwise. 0 means DefaultRetries;
	// negative disables retries entirely.
	Retries int
	// BackoffBase and BackoffCap shape the full-jitter exponential
	// backoff slept before each retry: attempt a sleeps a uniform draw
	// from (0, min(BackoffCap, BackoffBase<<(a-1))]. Zero means the
	// defaults (DefaultBackoffBase, DefaultBackoffCap); a negative
	// BackoffBase restores the immediate-retry behaviour.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerThreshold is the per-replica circuit breaker's K: after K
	// consecutive failures (data plane or health probe) the breaker
	// opens and routing avoids the replica until a half-open probe
	// exchange succeeds after a doubling, capped cooldown. 0 means
	// DefaultBreakerThreshold; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the first open interval. 0 means
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// Wire selects the data-plane codec. Default WireAuto.
	Wire WireFormat
	// DisableHandoff turns off session-state mirroring: sessionful
	// exchanges stop piggybacking their state delta to a sibling replica,
	// and a pinned replica's death surfaces OwnerFailedError immediately
	// instead of re-pinning the session to the synced mirror. The
	// pre-handoff behaviour, kept for callers that prefer whole-query
	// restarts (or measure the mirroring overhead).
	DisableHandoff bool
	// Logger receives the client's structured recovery narration:
	// replica health transitions, session handoffs, mirror promotions.
	// nil discards it.
	Logger *slog.Logger
}

// DefaultRetries is the retry budget of a replayable exchange when the
// dial config leaves it zero: one extra attempt, the pre-replica
// behaviour.
const DefaultRetries = 1

// HTTPClient is the originator side of the HTTP backend: per-replica
// connection state over one pooled http.Client, exchanges as POSTs,
// batches fanned out with one goroutine per addressed list. The client
// is shared infrastructure — sessions opened on it run concurrently —
// and every exchange gets its own per-attempt timeout plus a transient
// retry/failover budget, with the owning list wrapped into every error.
type HTTPClient struct {
	lists [][]*replica
	hc    *http.Client
	n     int

	policy     RoutingPolicy
	reqTimeout time.Duration
	retries    int
	replicated bool
	noHandoff  bool

	// bk paces retries (full-jitter exponential backoff); healthEvery
	// is the prober's base cadence, doubled per consecutive probe
	// failure by probeFailed.
	bk          backoff
	healthEvery time.Duration

	// rr holds the per-list round-robin cursors of RouteRoundRobin.
	rr []atomic.Uint32

	// wire holds the WireFormat (atomically, so SetWireFormat cannot
	// race live sessions); binNegotiated records whether every reachable
	// replica advertised the binary codec at dial time (consulted under
	// WireAuto).
	wire          atomic.Uint32
	binNegotiated bool

	// The background health prober's lifecycle; nil when disabled.
	probeCancel context.CancelFunc
	proberDone  chan struct{}
	closeOnce   sync.Once

	// log narrates recovery events (health transitions, handoffs,
	// promotions). Never nil; set once at dial.
	log *slog.Logger
}

// defaultHTTPClient builds the pooled client Dial uses when the caller
// passes nil. net/http's zero-value Transport keeps only 2 idle
// connections per host, so a fleet of concurrent originators hammering
// the same few owners would re-handshake TCP on nearly every exchange;
// the tuned pool keeps one warm connection per in-flight originator.
func defaultHTTPClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}}
}

// NormalizeOwnerURL turns a host:port (or full URL) into the base URL of
// an owner server.
func NormalizeOwnerURL(s string) string {
	s = strings.TrimSuffix(strings.TrimSpace(s), "/")
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}

// DefaultTimeout bounds each exchange attempt of the HTTP client: an
// owner that hangs mid-query must error the run, not stall the
// originator forever. Generous, because a TPUT phase-2 response can
// carry a whole list tail.
const DefaultTimeout = 30 * time.Second

// DialOwners connects to a flat owner set — urls[i] serves list i, one
// replica per list — with default policy, timeouts and health cadence.
// The pre-topology Dial shape, kept for the single-owner callers.
func DialOwners(urls []string, hc *http.Client) (*HTTPClient, error) {
	return Dial(context.Background(), DialConfig{Topology: SingleTopology(urls), Client: hc})
}

// Dial connects to the owner processes of cfg.Topology and validates the
// cluster: every replica of list i must report list index i, the shared
// list length, and a database of exactly len(Topology) lists. The
// handshake also negotiates the wire codec: when every reachable replica
// advertises the binary codec, the data plane uses it (see
// SetWireFormat).
//
// Replicas that cannot be reached at dial time are tolerated — marked
// unhealthy, to be revived by the background health prober — as long as
// every list has at least one reachable replica; a list with none fails
// the dial. Replicas that answer but disagree on shape always fail the
// dial: that is misconfiguration, not an outage.
func Dial(ctx context.Context, cfg DialConfig) (*HTTPClient, error) {
	topo := cfg.Topology
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	hc := cfg.Client
	if hc == nil {
		hc = defaultHTTPClient()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	t := &HTTPClient{
		lists:      make([][]*replica, len(topo)),
		hc:         hc,
		policy:     cfg.Policy,
		reqTimeout: cfg.RequestTimeout,
		retries:    cfg.Retries,
		replicated: topo.Replicated(),
		noHandoff:  cfg.DisableHandoff,
		rr:         make([]atomic.Uint32, len(topo)),
		log:        logger,
	}
	if t.reqTimeout <= 0 {
		t.reqTimeout = DefaultTimeout
	}
	switch {
	case t.retries == 0:
		t.retries = DefaultRetries
	case t.retries < 0:
		t.retries = 0
	}
	t.bk = defaultBackoff(cfg.BackoffBase, cfg.BackoffCap)
	t.wire.Store(uint32(cfg.Wire))
	threshold := cfg.BreakerThreshold
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	}
	for li, reps := range topo {
		t.lists[li] = make([]*replica, len(reps))
		for ri, u := range reps {
			r := &replica{list: li, index: ri, url: NormalizeOwnerURL(u)}
			r.mHealthy, r.mEwma, r.mBreaker = replicaGauges(li, ri)
			r.brk.arm(threshold, cfg.BreakerCooldown)
			t.lists[li][ri] = r
		}
	}
	if err := t.handshake(ctx); err != nil {
		return nil, err
	}
	interval := cfg.HealthInterval
	if interval == 0 {
		interval = DefaultHealthInterval
	}
	// The prober only pays off when routing has a choice to make: a flat
	// one-replica-per-list cluster is always routed to its only replica
	// whatever the verdict, and the pre-replica dial spawned no
	// background work — keep that for flat callers.
	if interval > 0 && t.replicated {
		t.startProber(interval)
	}
	return t, nil
}

// advertisesBinary reports whether a handshake advertises the binary
// wire codec.
func advertisesBinary(st OwnerStats) bool {
	for _, c := range st.Codecs {
		if c == CodecBinary {
			return true
		}
	}
	return false
}

// checkShape validates one replica's handshake against the dialed
// topology: it must serve the expected list of a database with the
// cluster's width and shared list length. requireBinary additionally
// demands the binary-codec advertisement — set when a late-validated
// replica joins a cluster whose data plane already speaks binary.
func (t *HTTPClient) checkShape(r *replica, st OwnerStats, requireBinary bool) error {
	if st.Index != r.list {
		return fmt.Errorf("transport: owner %d replica %d (%s) serves list %d; order the topology by list index",
			r.list, r.index, r.url, st.Index)
	}
	if st.M != len(t.lists) {
		return fmt.Errorf("transport: owner %d replica %d (%s) belongs to a database of %d lists, cluster has %d",
			r.list, r.index, r.url, st.M, len(t.lists))
	}
	if st.N != t.n {
		return fmt.Errorf("transport: owner %d replica %d (%s) has %d items, expected %d",
			r.list, r.index, r.url, st.N, t.n)
	}
	if requireBinary && !advertisesBinary(st) {
		return fmt.Errorf("transport: owner %d replica %d (%s) does not advertise the cluster's binary wire codec",
			r.list, r.index, r.url)
	}
	return nil
}

// handshake fetches every replica's /stats metadata in parallel and
// validates the topology against it. Replicas that answer must pass the
// shape check or the dial fails (misconfiguration); replicas that are
// unreachable are tolerated while their list has a live sibling, left
// unvalidated, and shape-checked by the health prober before they ever
// become routable.
func (t *HTTPClient) handshake(ctx context.Context) error {
	type verdict struct {
		st  OwnerStats
		dur time.Duration
		err error
	}
	verdicts := make([][]verdict, len(t.lists))
	var wg sync.WaitGroup
	for li, reps := range t.lists {
		verdicts[li] = make([]verdict, len(reps))
		for ri, r := range reps {
			wg.Add(1)
			go func(li, ri int, r *replica) {
				defer wg.Done()
				start := time.Now()
				st, err := t.replicaInfo(ctx, r)
				verdicts[li][ri] = verdict{st: st, dur: time.Since(start), err: err}
			}(li, ri, r)
		}
	}
	wg.Wait()

	// The shared list length comes from the first reachable replica;
	// everyone else must agree with it.
	for _, vs := range verdicts {
		for _, v := range vs {
			if v.err == nil {
				t.n = v.st.N
				break
			}
		}
		if t.n != 0 {
			break
		}
	}
	allBinary := true
	for li, reps := range t.lists {
		reachable := 0
		var firstErr error
		for ri, r := range reps {
			v := verdicts[li][ri]
			if v.err != nil {
				if firstErr == nil {
					firstErr = v.err
				}
				continue
			}
			if err := t.checkShape(r, v.st, false); err != nil {
				return err
			}
			allBinary = allBinary && advertisesBinary(v.st)
			r.validated.Store(true)
			t.noteHealth(r, true)
			r.observe(v.dur)
			reachable++
		}
		if reachable == 0 {
			return fmt.Errorf("transport: owner %d: no reachable replica: %w", li, firstErr)
		}
	}
	t.binNegotiated = allBinary
	return nil
}

// SetWireFormat overrides the dial-time codec negotiation (default
// WireAuto: binary when every owner advertises it). Safe to call
// concurrently with live sessions — the store is atomic — but exchanges
// already in flight finish on the codec they started with, so switch
// before opening sessions for deterministic wiring.
func (t *HTTPClient) SetWireFormat(f WireFormat) { t.wire.Store(uint32(f)) }

// binaryWire reports whether /rpc exchanges travel in the binary codec.
func (t *HTTPClient) binaryWire() bool {
	switch WireFormat(t.wire.Load()) {
	case WireJSON:
		return false
	case WireBinary:
		return true
	default:
		return t.binNegotiated
	}
}

// SetRequestTimeout changes the per-attempt bound on every subsequent
// exchange (default DefaultTimeout). Set it before opening sessions.
func (t *HTTPClient) SetRequestTimeout(d time.Duration) {
	if d > 0 {
		t.reqTimeout = d
	}
}

// M returns the number of owners (lists).
func (t *HTTPClient) M() int { return len(t.lists) }

// N returns the shared list length.
func (t *HTTPClient) N() int { return t.n }

func (t *HTTPClient) checkOwner(owner int) error {
	if owner < 0 || owner >= len(t.lists) {
		return fmt.Errorf("transport: owner %d out of range [0,%d)", owner, len(t.lists))
	}
	return nil
}

// transientStatus reports whether a response status is worth another
// attempt: the owner (or an intermediary) failed, rather than rejecting
// the request.
func transientStatus(status int) bool { return status >= 500 }

// transientErr reports whether a transport-level failure is worth
// another attempt: connection resets, refused connections and
// per-attempt timeouts — but never the caller's own cancellation, and
// never failures that cannot succeed on a second identical attempt (a
// URL that does not parse, a name that authoritatively does not
// resolve).
func transientErr(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	var dns *net.DNSError
	if errors.As(err, &dns) && dns.IsNotFound {
		return false
	}
	// The parent ctx is alive, so a deadline/cancel inside the attempt
	// came from the per-attempt timeout — an owner hang, transient by
	// definition. Everything else left at this level is a network error.
	return true
}

// attempt performs one HTTP round-trip under the per-attempt timeout.
// The returned status is 0 when no response arrived.
func (t *HTTPClient) attempt(ctx context.Context, method, url string, body []byte, contentType string, decode func(io.Reader) error) (int, error) {
	actx, cancel := context.WithTimeout(ctx, t.reqTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		// Request construction never touched the network; retrying the
		// same inputs is futile.
		return http.StatusBadRequest, err
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	// Ship the attempt's deadline budget — the smaller of the caller's
	// remaining query deadline and the per-attempt timeout — as relative
	// milliseconds, so the owner abandons work once nobody is waiting.
	if dl, ok := actx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(HeaderBudgetMs, strconv.FormatInt(ms, 10))
		}
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, remoteError(resp)
	}
	if decode == nil {
		return resp.StatusCode, nil
	}
	// A data-plane response carries its frame checksum; verify before
	// decoding so wire corruption surfaces as a typed, retryable error
	// instead of silently mangled payloads or an opaque decode failure.
	if crc := resp.Header.Get(HeaderFrameCRC); crc != "" {
		buf := getBuf()
		defer putBuf(buf)
		data, rerr := appendAll(*buf, resp.Body)
		*buf = data
		if rerr != nil {
			return resp.StatusCode, fmt.Errorf("%w: read body: %v", errCorruptFrame, rerr)
		}
		want, perr := strconv.ParseUint(crc, 16, 32)
		if perr != nil || crc32.ChecksumIEEE(data) != uint32(want) {
			return resp.StatusCode, fmt.Errorf("%w: frame checksum mismatch (%d bytes)", errCorruptFrame, len(data))
		}
		return resp.StatusCode, decode(bytes.NewReader(data))
	}
	return resp.StatusCode, decode(resp.Body)
}

// doReplica performs one control-plane exchange with a specific replica,
// body pre-encoded, retrying on the same replica up to the retry budget
// on transient failures with jittered backoff between attempts. An
// owner shed (429) is honored as backpressure: the pause is waited out
// without burning the retry budget, bounded by maxBackpressureWaits
// and the caller's deadline. Errors carry list, replica and URL.
func (t *HTTPClient) doReplica(ctx context.Context, r *replica, method, path string, body []byte, contentType string, decode func(io.Reader) error) error {
	var lastErr error
	waits := 0
	for a := 0; a <= t.retries; a++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		status, err := t.attempt(ctx, method, r.url+path, body, contentType, decode)
		if err == nil {
			return nil
		}
		lastErr = err
		if pause, shed := shedPause(err, t.bk, waits+1); shed && waits < maxBackpressureWaits {
			waits++
			mClientBackpressure.Inc()
			if sleepCtx(ctx, pause) != nil {
				break
			}
			a--
			continue
		}
		if !transientStatus(status) && (status != 0 || !transientErr(ctx, err)) &&
			!errors.Is(err, errCorruptFrame) {
			break
		}
		if a < t.retries {
			if sleepCtx(ctx, t.bk.delay(a+1)) != nil {
				break
			}
		}
	}
	return fmt.Errorf("transport: owner %d replica %d (%s): %w", r.list, r.index, r.url, lastErr)
}

// doJSON is the JSON control-plane exchange: marshal body, doReplica.
func (t *HTTPClient) doJSON(ctx context.Context, r *replica, method, path string, body any, decode func(io.Reader) error) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return fmt.Errorf("transport: owner %d (%s): encode request: %w", r.list, r.url, err)
		}
	}
	return t.doReplica(ctx, r, method, path, buf, ContentTypeJSON, decode)
}

// RemoteError is a non-200 reply from an owner server. It is a distinct
// type so upstream layers (the serve API) can tell an owner-side
// failure from the caller's own bad request and map it to 502 instead
// of 400.
type RemoteError struct {
	// Status is the HTTP status the owner answered with.
	Status int
	// Msg is the owner's error payload, if it sent one.
	Msg string
	// RetryAfter is the owner's backpressure hint on a 429 shed
	// response (X-Topk-Retry-After-Ms): how long to wait before
	// re-sending. Zero when the owner sent none.
	RetryAfter time.Duration
}

// Error renders the owner's message when present, the status otherwise.
func (e *RemoteError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("transport: remote: %s", e.Msg)
	}
	return fmt.Sprintf("transport: remote status %d", e.Status)
}

// remoteError lifts a non-200 reply into a RemoteError.
func remoteError(resp *http.Response) error {
	re := &RemoteError{Status: resp.StatusCode}
	if v, err := strconv.ParseInt(resp.Header.Get(HeaderRetryAfterMs), 10, 64); err == nil && v > 0 {
		re.RetryAfter = time.Duration(v) * time.Millisecond
	}
	var body httpError
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err == nil && body.Error != "" {
		re.Msg = body.Error
	}
	return re
}

// maxBackpressureWaits bounds how many owner sheds one exchange (or
// control-plane call) will wait out before the 429 is surfaced as an
// ordinary failure — a fuse against an owner stuck answering 429
// forever, on top of the caller's own deadline.
const maxBackpressureWaits = 16

// shedPause reports whether err is an owner shed (429 backpressure)
// and, when it is, how long to pause before re-sending: the owner's
// retry-after hint plus a jittered backoff share so a fleet of shed
// clients doesn't return in lockstep.
func shedPause(err error, bk backoff, waits int) (time.Duration, bool) {
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusTooManyRequests {
		return 0, false
	}
	return re.RetryAfter + bk.delay(waits), true
}

// replicaInfo fetches one replica's list metadata (the dial handshake),
// retried on transient failures like any control-plane exchange — a
// single connection blip must not fail a flat single-replica dial.
func (t *HTTPClient) replicaInfo(ctx context.Context, r *replica) (OwnerStats, error) {
	var st OwnerStats
	err := t.doReplica(ctx, r, http.MethodGet, "/stats", nil, "", func(body io.Reader) error {
		return json.NewDecoder(body).Decode(&st)
	})
	if err != nil {
		return OwnerStats{}, err
	}
	return st, nil
}

// sessionListState is one session's per-list routing and accounting
// state: which replicas hold the session, the replica its sessionful
// traffic is pinned to, and — in replicated topologies — the
// client-side access ledger. Guarded by its mutex; contention is nil in
// practice because a session addresses each list from one goroutine at
// a time.
type sessionListState struct {
	mu sync.Mutex
	// open[ri] records that replica ri acknowledged /session/open — the
	// set this session may route to. A replica dropped mid-query (lost
	// session, failed pin) leaves this set for good.
	open []bool
	// acked[ri] records the open acknowledgement permanently: Close
	// releases state at every replica that ever held the session, even
	// ones dropped from routing — a live replica dropped after a
	// transient failure still holds (stale) session state worth freeing.
	acked []bool
	// pin is the replica serving this session's sessionful exchanges,
	// chosen by policy at first use; nil until then.
	pin *replica
	// mirror is the sibling replica kept in sync with the pin's session
	// state, promoted to pin when the pin dies mid-query. Invariant: a
	// non-nil mirror's state equals the pin's state as of the last
	// successful sessionful exchange (chosen while both were fresh, then
	// synced after every exchange), so promoting it never replays a
	// cursor advance. nil when the list has no sibling, handoff is
	// disabled, or the last sync failed and no replacement could be
	// promoted.
	mirror *replica
	// failed[ri] records replicas that failed an exchange (or a mirror
	// sync) of this session — the session's recovery bookkeeping.
	failed []bool
	// ledger mirrors the accesses this session's successful exchanges
	// charged, per the owner handler semantics (see record). In a
	// replicated topology the authoritative tally would be scattered
	// across the replicas that happened to serve each exchange — and
	// partially lost with a crashed one — so Stats reports the ledger
	// instead, keeping access accounting bit-identical to a single-owner
	// run whatever routed or failed over.
	ledger ledger
}

// ledger is the client-side access mirror of one (session, list) pair.
type ledger struct {
	sorted, random, direct int64
	depth                  int
}

// record charges one successful exchange to the ledger, mirroring the
// owner handlers exactly: sorted/topk/above are sorted accesses, lookup/
// mark/fetch are random, probe is direct (unless it had nothing left to
// read). n is the list length — needed to tell whether an above-scan
// stopped on a below-threshold read (charged) or ran off the end.
func (l *ledger) record(req Request, resp Response, n int) {
	switch r := req.(type) {
	case SortedReq:
		l.sorted++
	case LookupReq:
		l.random++
	case MarkReq:
		l.random++
	case FetchReq:
		l.random += int64(len(r.Items))
	case ProbeReq:
		if pr, ok := resp.(ProbeResp); ok && !pr.Empty {
			l.direct++
		}
	case TopKReq:
		l.sorted += int64(r.K)
		l.depth = r.K
	case AboveReq:
		ar, ok := resp.(AboveResp)
		if !ok {
			return
		}
		// The owner reads entries until one falls below the threshold
		// (that read is charged too) or the list ends.
		charge := len(ar.Entries) + 1
		if rest := n - l.depth; charge > rest {
			charge = rest
		}
		l.sorted += int64(charge)
		l.depth += charge
	case BatchReq:
		br, ok := resp.(BatchResp)
		if !ok || len(br.Resps) != len(r.Reqs) {
			return
		}
		for i := range r.Reqs {
			l.record(r.Reqs[i], br.Resps[i], n)
		}
	}
}

// openTimeout caps each replica's /session/open attempt budget. The
// open fan-out waits for every replica of every list, so a single
// black-holed host must not stall query start for the full data-plane
// timeout times the retry budget: acknowledging an open is a trivial
// control-plane operation, and a replica that misses this window is
// simply excluded from the session's routing — its list's sibling
// carries the session (Close gets the same treatment via closeTimeout).
const openTimeout = 5 * time.Second

// Open starts a query session at every replica of every list, fanned out
// in parallel. Fanning the open to ALL replicas — not just the ones the
// policy would route to — is what makes mid-query failover safe: a
// sibling replica already holds the session when traffic lands on it.
// Replicas that fail the open are excluded from this session's routing;
// a list whose every replica failed aborts the open (and closes the
// partial session, best-effort).
func (t *HTTPClient) Open(ctx context.Context, tracker bestpos.Kind) (Session, error) {
	sid := NewSessionID()
	body := sessionBody{SID: sid, Tracker: uint8(tracker)}
	s := &httpSession{t: t, sid: sid, state: make([]sessionListState, len(t.lists))}
	errs := make([][]error, len(t.lists))
	// The cap only makes sense when a sibling can carry the session: a
	// flat topology keeps the full request timeout it always had — a
	// merely slow single owner must not start failing opens.
	bound := t.reqTimeout
	if t.replicated && bound > openTimeout {
		bound = openTimeout
	}
	var wg sync.WaitGroup
	for li, reps := range t.lists {
		s.state[li].open = make([]bool, len(reps))
		errs[li] = make([]error, len(reps))
		for ri, r := range reps {
			wg.Add(1)
			go func(li, ri int, r *replica) {
				defer wg.Done()
				octx, cancel := context.WithTimeout(ctx, bound)
				defer cancel()
				errs[li][ri] = t.doJSON(octx, r, http.MethodPost, "/session/open", body, nil)
			}(li, ri, r)
		}
	}
	wg.Wait()
	// Flag every acknowledged open first, so a partial-failure Close
	// reaches everything that was opened.
	for li := range t.lists {
		s.state[li].acked = make([]bool, len(errs[li]))
		for ri, err := range errs[li] {
			s.state[li].open[ri] = err == nil
			s.state[li].acked[ri] = err == nil
		}
	}
	for li := range t.lists {
		opened := 0
		var firstErr error
		for ri := range errs[li] {
			if errs[li][ri] == nil {
				opened++
			} else if firstErr == nil {
				firstErr = errs[li][ri]
			}
		}
		if opened == 0 {
			_ = s.Close()
			return nil, firstErr
		}
	}
	mClientSessOpened.Inc()
	mClientSessionsOpen.Add(1)
	s.counted = true
	return s, nil
}

// liveSID is the sentinel session parameter update exchanges travel
// under: the /rpc data plane requires a sid, but updates are feed-plane
// and the owner ignores it.
const liveSID = "live"

// updateReplica sends one update batch to one replica over the data
// plane — negotiated codec, frame CRC, shed backpressure and transient
// retries; updates are replayable by their per-feed sequence number, so
// re-sending is always safe.
func (t *HTTPClient) updateReplica(ctx context.Context, r *replica, req UpdateReq) (UpdateResp, error) {
	binary := t.binaryWire()
	var (
		body []byte
		err  error
		ct   = ContentTypeJSON
	)
	if binary {
		body, err = AppendRequestBinary(nil, req)
		ct = ContentTypeBinary
	} else {
		body, err = json.Marshal(req)
	}
	if err != nil {
		return UpdateResp{}, fmt.Errorf("transport: owner %d: encode update: %w", r.list, err)
	}
	var out UpdateResp
	derr := t.doReplica(ctx, r, http.MethodPost, "/rpc/"+string(KindUpdate)+"?sid="+liveSID, body, ct, func(rd io.Reader) error {
		data, rerr := io.ReadAll(rd)
		if rerr != nil {
			return fmt.Errorf("%w: read body: %v", errCorruptFrame, rerr)
		}
		var resp Response
		var derr error
		if binary {
			resp, derr = DecodeResponseBinary(data)
		} else {
			resp, derr = UnmarshalResponseJSON(KindUpdate, data)
		}
		if derr != nil {
			return fmt.Errorf("%w: decode: %v", errCorruptFrame, derr)
		}
		ur, ok := resp.(UpdateResp)
		if !ok {
			return fmt.Errorf("%w: unexpected response %T", errCorruptFrame, resp)
		}
		out = ur
		return nil
	})
	return out, derr
}

// UpdateAll applies one feed-plane update batch at every replica of a
// list, fanned out in parallel — replicas of one list must see the same
// update stream or they stop being interchangeable. Every replica must
// acknowledge; on partial failure the error surfaces and the caller
// re-sends the same (feed, seq) batch, which the per-feed sequence
// check makes safe: replicas that already applied it acknowledge
// without re-applying. The merged ack reports whether any replica
// applied the batch fresh, the highest resulting list version, and the
// union of standing-query crossings, sorted.
func (t *HTTPClient) UpdateAll(ctx context.Context, owner int, feed string, seq uint64, updates []ScoreUpdate) (UpdateResp, error) {
	if err := t.checkOwner(owner); err != nil {
		return UpdateResp{}, err
	}
	req := UpdateReq{Feed: feed, Seq: seq, Updates: updates}
	reps := t.lists[owner]
	resps := make([]UpdateResp, len(reps))
	errs := make([]error, len(reps))
	var wg sync.WaitGroup
	for ri, r := range reps {
		wg.Add(1)
		go func(ri int, r *replica) {
			defer wg.Done()
			resps[ri], errs[ri] = t.updateReplica(ctx, r, req)
		}(ri, r)
	}
	wg.Wait()
	var out UpdateResp
	seen := make(map[string]bool)
	for ri := range reps {
		if errs[ri] != nil {
			return UpdateResp{}, errs[ri]
		}
		if resps[ri].Applied {
			out.Applied = true
		}
		if resps[ri].Version > out.Version {
			out.Version = resps[ri].Version
		}
		for _, q := range resps[ri].Crossings {
			if !seen[q] {
				seen[q] = true
				out.Crossings = append(out.Crossings, q)
			}
		}
	}
	sort.Strings(out.Crossings)
	return out, nil
}

// SetFilter installs a standing-query notification filter at every
// replica of a list — control-plane fan-out, all replicas must ack, so
// a suppressed notification is a cluster-wide verdict rather than one
// replica's opinion.
func (t *HTTPClient) SetFilter(ctx context.Context, owner int, query string, slack float64, watch []list.ItemID) error {
	return t.filterAll(ctx, owner, "/filter/set", filterBody{Query: query, Slack: slack, Watch: watch})
}

// ClearFilter removes a standing-query filter at every replica of a
// list (idempotent at each).
func (t *HTTPClient) ClearFilter(ctx context.Context, owner int, query string) error {
	return t.filterAll(ctx, owner, "/filter/clear", filterBody{Query: query})
}

func (t *HTTPClient) filterAll(ctx context.Context, owner int, path string, body filterBody) error {
	if err := t.checkOwner(owner); err != nil {
		return err
	}
	reps := t.lists[owner]
	errs := make([]error, len(reps))
	var wg sync.WaitGroup
	for ri, r := range reps {
		wg.Add(1)
		go func(ri int, r *replica) {
			defer wg.Done()
			errs[ri] = t.doJSON(ctx, r, http.MethodPost, path, body, nil)
		}(ri, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close stops the background health prober and releases idle
// connections. Sessions should be closed first.
func (t *HTTPClient) Close() error {
	t.closeOnce.Do(func() {
		if t.probeCancel != nil {
			t.probeCancel()
			<-t.proberDone
		}
	})
	t.hc.CloseIdleConnections()
	return nil
}

// httpSession is one query over the shared HTTP client. Elapsed
// accumulates real time the way the Concurrent backend accumulates
// virtual time: a batch costs its slowest owner, not the sum.
type httpSession struct {
	t   *HTTPClient
	sid string

	mu      sync.Mutex
	elapsed time.Duration

	state []sessionListState

	// handoffs counts pin-to-mirror promotions across all lists;
	// backpressure counts owner sheds (429) this session waited out.
	handoffs     atomic.Int64
	backpressure atomic.Int64

	// rec collects per-exchange trace spans when the query is traced;
	// nil otherwise. Armed via SetSpanRecorder before the first
	// exchange (the SpanRecording contract), read without locks.
	rec *SpanRecorder

	// counted marks the session charged to the open-sessions gauge;
	// closed makes the matching decrement fire exactly once.
	counted bool
	closed  atomic.Bool
}

// ID returns the session ID.
func (s *httpSession) ID() string { return s.sid }

// SetSpanRecorder arms (or, with nil, disarms) per-exchange tracing.
func (s *httpSession) SetSpanRecorder(r *SpanRecorder) { s.rec = r }

func (s *httpSession) addElapsed(d time.Duration) {
	s.mu.Lock()
	s.elapsed += d
	s.mu.Unlock()
}

// rpcPath is the data-plane URL of one request kind for this session.
func (s *httpSession) rpcPath(kind Kind) string {
	return "/rpc/" + string(kind) + "?sid=" + s.sid
}

// routable reports this session's replica set for a list: the replicas
// that acknowledged the open and have not since lost the session. Only
// one goroutine addresses a list at a time (the Session contract), so
// the slice needs no lock between a dropOpen and the reads that follow
// it.
func (s *httpSession) routable(li int) []bool {
	return s.state[li].open
}

// dropOpen removes a replica from this session's routing — it answered
// ErrUnknownSession, so it restarted and lost the session state.
func (s *httpSession) dropOpen(li, ri int) {
	ls := &s.state[li]
	ls.mu.Lock()
	ls.open[ri] = false
	ls.mu.Unlock()
}

// pinned returns the replica this session's sessionful traffic for list
// li sticks to, choosing it by policy on first use — and, unless
// handoff is disabled, a mirror sibling alongside it. Both start from
// identical fresh session state, so the mirror is synced by
// construction until the first sessionful exchange lands a delta.
func (s *httpSession) pinned(li int) *replica {
	ls := &s.state[li]
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.pin == nil {
		ls.pin = s.t.route(li, ls.open, nil)
		if ls.pin != nil && !s.t.noHandoff {
			tried := make([]bool, len(s.t.lists[li]))
			tried[ls.pin.index] = true
			ls.mirror = s.t.route(li, ls.open, tried)
		}
	}
	return ls.pin
}

// noteFailed records a replica failing an exchange (or mirror sync) of
// this session, for the session's recovery bookkeeping.
func (s *httpSession) noteFailed(li, ri int) {
	ls := &s.state[li]
	ls.mu.Lock()
	if ls.failed == nil {
		ls.failed = make([]bool, len(s.t.lists[li]))
	}
	ls.failed[ri] = true
	ls.mu.Unlock()
}

// SessionRecovery reports the failures one session absorbed: how many
// pin-to-mirror handoffs it performed, how many distinct replicas
// failed an exchange mid-query, and how many owner sheds it waited out
// as backpressure. The dist runner harvests it into Result.Recovery;
// primary accounting is untouched by any of them.
type SessionRecovery struct {
	Handoffs       int
	FailedReplicas int
	Backpressure   int
}

// Recovery snapshots the session's recovery tallies.
func (s *httpSession) Recovery() SessionRecovery {
	rec := SessionRecovery{Handoffs: int(s.handoffs.Load()), Backpressure: int(s.backpressure.Load())}
	for li := range s.state {
		ls := &s.state[li]
		ls.mu.Lock()
		for _, f := range ls.failed {
			if f {
				rec.FailedReplicas++
			}
		}
		ls.mu.Unlock()
	}
	return rec
}

// controlBound caps a recovery control-plane call (sync, state export)
// the way openTimeout caps the open fan-out: these calls exist to keep
// a sibling promotable, so a black-holed sibling must cost a bounded
// slice of the query, not a full data-plane timeout per exchange.
func (s *httpSession) controlBound() time.Duration {
	if s.t.reqTimeout < openTimeout {
		return s.t.reqTimeout
	}
	return openTimeout
}

// appendSyncPositions collects the seen-position deltas a sessionful
// response piggybacks (ProbeResp.Pos, MarkResp.Pos, recursively through
// batches). TopK/Above deltas are depth-only and come from the ledger.
func appendSyncPositions(dst []int, resp Response) []int {
	switch r := resp.(type) {
	case ProbeResp:
		if r.Pos > 0 {
			dst = append(dst, r.Pos)
		}
	case MarkResp:
		if r.Pos > 0 {
			dst = append(dst, r.Pos)
		}
	case BatchResp:
		for _, inner := range r.Resps {
			dst = appendSyncPositions(dst, inner)
		}
	}
	return dst
}

// syncMirror forwards the session-state delta of one successful
// sessionful exchange to the list's mirror replica, synchronously —
// the mirror invariant (state equals the pin's as of the last
// successful exchange) is what makes a later handoff replay-safe, so
// the delta cannot be deferred. Marks are idempotent and the depth
// merge monotonic, so a delta the mirror already holds converges. A
// mirror that fails the sync is dropped (it may be stale now) and a
// replacement is promoted from the pin's full state, best-effort.
func (s *httpSession) syncMirror(ctx context.Context, li int, resp Response) {
	if !s.t.replicated || s.t.noHandoff {
		return
	}
	ls := &s.state[li]
	ls.mu.Lock()
	m := ls.mirror
	depth := ls.ledger.depth
	ls.mu.Unlock()
	if m == nil {
		return
	}
	body := syncBody{SID: s.sid, Positions: appendSyncPositions(nil, resp), Depth: depth}
	sctx, cancel := context.WithTimeout(ctx, s.controlBound())
	err := s.t.doJSON(sctx, m, http.MethodPost, "/session/sync", body, nil)
	cancel()
	if err == nil {
		return
	}
	// The mirror missed a delta: it is no longer promotable. A 404 means
	// it restarted and lost the session outright — drop it from routing
	// too. Demote its health so the promotion below does not immediately
	// re-pick the replica that just failed; the prober revives it. Then
	// try to promote a replacement from the pin's full state.
	s.noteFailed(li, m.index)
	m.noteFailure()
	s.t.noteHealth(m, false)
	s.t.tripFailure(m)
	s.t.log.Warn("mirror lost sync", "sid", s.sid, "list", li, "replica", m.index, "url", m.url, "err", err)
	var re *RemoteError
	if errors.As(err, &re) && re.Status == http.StatusNotFound {
		s.dropOpen(li, m.index)
	}
	ls.mu.Lock()
	if ls.mirror == m {
		ls.mirror = nil
	}
	ls.mu.Unlock()
	s.promoteMirror(ctx, li)
}

// promoteMirror installs a fresh synced mirror for list li: it picks a
// routable sibling of the pin, copies the pin's full session state onto
// it (seen-position ranges + depth), and installs it only when the copy
// succeeded — preserving the invariant that a non-nil mirror is always
// promotable. Best-effort: with no sibling left, or a failed copy, the
// session continues unmirrored and the pin's death surfaces the typed
// owner failure.
func (s *httpSession) promoteMirror(ctx context.Context, li int) {
	if s.t.noHandoff {
		return
	}
	ls := &s.state[li]
	ls.mu.Lock()
	pin := ls.pin
	hasMirror := ls.mirror != nil
	open := append([]bool(nil), ls.open...)
	ls.mu.Unlock()
	if pin == nil || hasMirror {
		return
	}
	tried := make([]bool, len(s.t.lists[li]))
	tried[pin.index] = true
	cand := s.t.route(li, open, tried)
	if cand == nil || cand == pin {
		return
	}
	bctx, cancel := context.WithTimeout(ctx, s.controlBound())
	defer cancel()
	var st syncBody
	err := s.t.doJSON(bctx, pin, http.MethodGet, "/session/state?sid="+s.sid, nil, func(body io.Reader) error {
		return json.NewDecoder(body).Decode(&st)
	})
	if err != nil {
		return
	}
	if err := s.t.doJSON(bctx, cand, http.MethodPost, "/session/sync",
		syncBody{SID: s.sid, Ranges: st.Ranges, Depth: st.Depth}, nil); err != nil {
		s.noteFailed(li, cand.index)
		cand.noteFailure()
		s.t.noteHealth(cand, false)
		s.t.tripFailure(cand)
		return
	}
	ls.mu.Lock()
	installed := false
	if ls.mirror == nil && ls.pin == pin && ls.open[cand.index] {
		ls.mirror = cand
		installed = true
	}
	ls.mu.Unlock()
	if installed {
		mClientPromotions.Inc()
		s.t.log.Info("mirror promoted", "sid", s.sid, "list", li, "replica", cand.index, "url", cand.url)
	}
}

// handoff re-pins the session for list li to its synced mirror after
// the pinned replica failed, returning the new pin — or nil when no
// synced mirror exists, in which case the caller surfaces the typed
// OwnerFailedError. The failed replica is dropped from this session's
// routing for good (its session state is stale or gone; were it to
// serve a later exchange, cursors could advance twice). Because every
// handoff permanently drops a replica, handoffs per list are bounded by
// the replica set. A fresh mirror is then promoted from the new pin's
// state, best-effort, so the session survives further deaths.
func (s *httpSession) handoff(ctx context.Context, li int, failed *replica) *replica {
	if s.t.noHandoff {
		return nil
	}
	ls := &s.state[li]
	ls.mu.Lock()
	ls.open[failed.index] = false
	next := ls.mirror
	ls.mirror = nil
	if next != nil && !ls.open[next.index] {
		next = nil
	}
	if next != nil {
		ls.pin = next
	}
	ls.mu.Unlock()
	if next == nil {
		return nil
	}
	s.handoffs.Add(1)
	mClientHandoffs.Inc()
	s.t.log.Info("session handoff", "sid", s.sid, "list", li,
		"from", failed.url, "to", next.url)
	s.promoteMirror(ctx, li)
	return next
}

// recordAccess charges a successful exchange to the session's access
// ledger (replicated topologies only — flat clusters report the owner's
// own authoritative tally).
func (s *httpSession) recordAccess(li int, req Request, resp Response) {
	if !s.t.replicated {
		return
	}
	ls := &s.state[li]
	ls.mu.Lock()
	ls.ledger.record(req, resp, s.t.n)
	ls.mu.Unlock()
}

// attemptRPC performs one data-plane round-trip with one replica in the
// session's wire codec, reporting the encoded response size alongside
// the decoded message (tracing and the wire-bytes metrics want the
// on-the-wire count, which only this frame sees). Both bodies pass
// through pooled buffers; decoded messages own their memory, so nothing
// aliases a pooled slice after return.
func (s *httpSession) attemptRPC(ctx context.Context, r *replica, kind Kind, body []byte, binary bool) (Response, int, int, error) {
	ct := ContentTypeJSON
	if binary {
		ct = ContentTypeBinary
	}
	var out Response
	respBytes := 0
	status, err := s.t.attempt(ctx, http.MethodPost, r.url+s.rpcPath(kind), body, ct, func(rd io.Reader) error {
		dec := getBuf()
		defer putBuf(dec)
		data, rerr := appendAll(*dec, rd)
		*dec = data
		if rerr != nil {
			return fmt.Errorf("%w: read body: %v", errCorruptFrame, rerr)
		}
		respBytes = len(data)
		var derr error
		if binary {
			out, derr = DecodeResponseBinary(data)
		} else {
			out, derr = decodeResponseJSON(kind, data)
		}
		if derr != nil {
			// The owner answered 200, so a frame that fails to decode
			// was damaged in transit: classify as corrupt, not permanent.
			return fmt.Errorf("%w: decode: %v", errCorruptFrame, derr)
		}
		return nil
	})
	return out, respBytes, status, err
}

// exchange performs one logical exchange with the owner of a list,
// routing it to a replica and absorbing transient failures:
//
//   - stateless requests go to the policy's replica and FAIL OVER to a
//     sibling on transient failure (every replica holds the session, and
//     a stateless request is by construction replayable);
//   - sessionful requests go to the session's pinned replica; replayable
//     ones (mark, topk) may be retried there, and every successful one
//     syncs its state delta to the list's mirror sibling. A pin failure
//     that persists — or any failure of a non-replayable probe/above —
//     HANDS OFF: the session re-pins to the synced mirror and resumes,
//     re-sending even the non-replayable request, which is safe because
//     the mirror's state excludes the failed exchange either way (the
//     pin never applied it, or applied it but is dropped for good so
//     its advanced cursor is never observed again). Only when no synced
//     mirror exists (flat list, handoff disabled, or every sibling
//     gone) does the failure surface as OwnerFailedError.
func (s *httpSession) exchange(ctx context.Context, li int, req Request) (_ Response, err error) {
	kind := req.Kind()
	binary := s.t.binaryWire()
	enc := getBuf()
	defer putBuf(enc)
	if binary {
		*enc, err = AppendRequestBinary(*enc, req)
	} else {
		*enc, err = json.Marshal(req)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: owner %d: encode request: %w", li, err)
	}

	sessionful := req.Sessionful()
	var target *replica
	if sessionful {
		target = s.pinned(li)
	} else {
		target = s.t.route(li, s.routable(li), nil)
	}
	if target == nil {
		return nil, fmt.Errorf("transport: owner %d: no routable replica", li)
	}

	// Exchange-level observability: one metrics charge and — when the
	// query is traced — one Span per logical exchange, fed by the
	// attempt loop below. Neither touches Net or the access ledger;
	// the paper's accounting is computed exactly as before.
	var (
		reqLen     = len(*enc)
		respBytes  = 0
		attempted  = 0
		didHandoff = false
	)
	failedOver := false
	exStart := time.Now()
	defer func() {
		observeExchangeMetrics(kind, binary, time.Since(exStart), reqLen, respBytes, attempted, failedOver, err)
		if s.rec == nil {
			return
		}
		sp := Span{Owner: li, Replica: -1, Kind: kind, Msgs: logicalMessages(req),
			ReqBytes: reqLen, RespBytes: respBytes, Duration: time.Since(exStart),
			Attempts: attempted, FailedOver: failedOver, Handoff: didHandoff,
			Err: errString(err)}
		if target != nil {
			sp.Replica, sp.URL = target.index, target.url
		}
		s.rec.Record(sp)
	}()

	// attemptsFor is the per-target attempt budget; a handoff re-arms it
	// for the fresh pin (handoffs themselves are bounded by the replica
	// set, not this budget — each one drops a replica for good).
	attemptsFor := func() int {
		attempts := 1
		if req.Replayable() {
			attempts += s.t.retries
			if !sessionful && s.t.retries > 0 {
				// Stateless traffic may fail over: every replica holding the
				// session deserves one try before the exchange gives up, even
				// when that exceeds the flat same-replica retry budget.
				open := 0
				for _, ok := range s.routable(li) {
					if ok {
						open++
					}
				}
				if open > attempts {
					attempts = open
				}
			}
		}
		return attempts
	}
	attempts := attemptsFor()
	var tried []bool
	var lastErr error
	waits := 0
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		if attempted > 0 {
			// Jittered exponential backoff before every re-attempt (and
			// before resuming on a failed-over sibling): an immediate
			// identical re-send re-offers the load that just failed at
			// the instant it failed, which under overload or a flapping
			// network synchronizes the retriers into a storm.
			if sleepCtx(ctx, s.t.bk.delay(attempted)) != nil {
				break
			}
		}
		attempted++
		start := time.Now()
		resp, rb, status, err := s.attemptRPC(ctx, target, kind, *enc, binary)
		if err == nil {
			respBytes = rb
			target.observe(time.Since(start))
			s.t.noteHealth(target, true)
			s.t.tripSuccess(target)
			if failedOver {
				target.failovers.Add(1)
			}
			s.recordAccess(li, req, resp)
			if sessionful {
				s.syncMirror(ctx, li, resp)
			}
			return resp, nil
		}
		lastErr = err
		// A 429 is the owner shedding load before doing any work:
		// backpressure, not failure. Wait out the owner's retry-after
		// hint (plus jitter) and re-send without burning the attempt
		// budget or the replica's health/breaker standing — a shed
		// exchange is safe to re-send whatever its kind, because the
		// owner is contractually bound to have run none of it.
		if pause, shed := shedPause(err, s.t.bk, waits+1); shed && waits < maxBackpressureWaits {
			waits++
			attempted--
			mClientBackpressure.Inc()
			s.backpressure.Add(1)
			if sleepCtx(ctx, pause) != nil {
				break
			}
			a--
			continue
		}
		// A 404 is the owner's ErrUnknownSession: the replica is alive
		// but no longer holds this session — it restarted since the
		// open. Its copy of the session state is gone, not the session:
		// a sibling replica still holds it.
		var re *RemoteError
		sessionLost := errors.As(err, &re) && re.Status == http.StatusNotFound
		transient := transientStatus(status) || (status == 0 && transientErr(ctx, err)) ||
			errors.Is(err, errCorruptFrame)
		if !sessionLost && !transient {
			// The owner rejected the request (or the caller canceled):
			// no replica will answer differently.
			return nil, fmt.Errorf("transport: owner %d (%s): %w", li, target.url, err)
		}
		if !sessionLost {
			target.noteFailure()
			s.t.noteHealth(target, false)
			s.t.tripFailure(target)
		}
		s.noteFailed(li, target.index)
		if sessionful {
			if !sessionLost && a+1 < attempts {
				continue // replayable: retry the pinned replica itself
			}
			// The pinned replica failed for good — or restarted and lost
			// the cursors. Hand the session off to the synced mirror and
			// resume there; without one, the failure poisons the session
			// for this list.
			if next := s.handoff(ctx, li, target); next != nil {
				target = next
				failedOver = true
				didHandoff = true
				attempts = attemptsFor()
				a = -1 // fresh attempt budget on the new pin
				continue
			}
			break
		}
		// Stateless: fail over to a sibling replica that holds the
		// session; with none left, re-attempt the same replica. A
		// restarted replica is dropped from this session's routing for
		// good — it would keep answering 404.
		if sessionLost {
			s.dropOpen(li, target.index)
		}
		if tried == nil {
			tried = make([]bool, len(s.t.lists[li]))
		}
		tried[target.index] = true
		if next := s.t.route(li, s.routable(li), tried); next != nil {
			failedOver = failedOver || next != target
			target = next
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		// Cancellation wins whatever failures preceded it: a canceled
		// query is not an owner failure and must not read as the
		// "rerun me" OwnerFailedError contract.
		return nil, fmt.Errorf("transport: owner %d (%s): %w", li, target.url, cerr)
	}
	if attempted == 0 || !sessionful {
		// A stateless exchange ran out of replicas to fail over to —
		// rerunning the query would pin to the same dead set, so this
		// is not the typed failure either.
		return nil, fmt.Errorf("transport: owner %d (%s): %w", li, target.url, lastErr)
	}
	return nil, &OwnerFailedError{List: li, Replica: target.index, URL: target.url, Err: lastErr}
}

// Do performs one exchange and charges its real round-trip time.
func (s *httpSession) Do(ctx context.Context, owner int, req Request) (Response, error) {
	if err := s.t.checkOwner(owner); err != nil {
		return nil, err
	}
	start := time.Now()
	resp, err := s.exchange(ctx, owner, req)
	if err != nil {
		return nil, err
	}
	s.addElapsed(time.Since(start))
	return resp, nil
}

// DoAll fans the calls out with one goroutine per addressed list, each
// list's calls in submission order, and charges the slowest list's
// serialized time. The per-list goroutines stop at the first error of
// their own list and on ctx cancellation.
func (s *httpSession) DoAll(ctx context.Context, calls []Call) ([]Response, error) {
	for _, c := range calls {
		if err := s.t.checkOwner(c.Owner); err != nil {
			return nil, err
		}
	}
	byOwner := make(map[int][]int)
	for idx, c := range calls {
		byOwner[c.Owner] = append(byOwner[c.Owner], idx)
	}
	out := make([]Response, len(calls))
	errs := make([]error, len(calls))
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		slowest time.Duration
	)
	for owner, idxs := range byOwner {
		wg.Add(1)
		go func(owner int, idxs []int) {
			defer wg.Done()
			start := time.Now()
			for _, idx := range idxs {
				if err := ctx.Err(); err != nil {
					errs[idx] = err
					return
				}
				resp, err := s.exchange(ctx, owner, calls[idx].Req)
				if err != nil {
					errs[idx] = err
					return
				}
				out[idx] = resp
			}
			mu.Lock()
			if d := time.Since(start); d > slowest {
				slowest = d
			}
			mu.Unlock()
		}(owner, idxs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s.addElapsed(slowest)
	return out, nil
}

// Stats reports an owner's bookkeeping for this session. In a flat
// topology the single replica's tally is authoritative; in a replicated
// one the exchanges were scattered across replicas by routing (and
// possibly lost with a crashed one), so the access tally and scan depth
// come from the session's client-side ledger — bit-identical to a
// single-owner run by construction — while the remaining metadata comes
// from the pinned (else first answering) replica.
func (s *httpSession) Stats(ctx context.Context, owner int) (OwnerStats, error) {
	if err := s.t.checkOwner(owner); err != nil {
		return OwnerStats{}, err
	}
	ls := &s.state[owner]
	ls.mu.Lock()
	pin := ls.pin
	led := ls.ledger
	ls.mu.Unlock()

	// Candidate order: the pinned replica knows the session's cursors;
	// after it, prefer whatever route returns, then everything open.
	var cands []*replica
	seen := make([]bool, len(s.t.lists[owner]))
	add := func(r *replica) {
		if r != nil && !seen[r.index] {
			seen[r.index] = true
			cands = append(cands, r)
		}
	}
	add(pin)
	add(s.t.route(owner, s.routable(owner), nil))
	for _, r := range s.t.lists[owner] {
		if s.routable(owner)[r.index] {
			add(r)
		}
	}

	var st OwnerStats
	var lastErr error
	got := false
	for _, r := range cands {
		err := s.t.doJSON(ctx, r, http.MethodGet, "/stats?sid="+s.sid, nil, func(body io.Reader) error {
			return json.NewDecoder(body).Decode(&st)
		})
		if err == nil {
			got = true
			break
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	if !got {
		if lastErr == nil {
			lastErr = fmt.Errorf("transport: owner %d: no routable replica", owner)
		}
		return OwnerStats{}, lastErr
	}
	if s.t.replicated {
		st.Accesses.Sorted = led.sorted
		st.Accesses.Random = led.random
		st.Accesses.Direct = led.direct
		if led.depth > st.Depth {
			st.Depth = led.depth
		}
	}
	return st, nil
}

// Elapsed returns the real time this session has spent in exchanges.
func (s *httpSession) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.elapsed
}

// closeTimeout caps the whole best-effort session teardown. Close runs
// on the cancellation path — a caller abandoning a query must get
// control back promptly even when an owner hangs — so it does not get
// the generous data-plane budget.
const closeTimeout = 2 * time.Second

// Close releases the session's owner-side state at every replica that
// holds it, best-effort and in parallel: every replica is attempted
// under a fresh short-lived control-plane context (so a canceled query
// still cleans up after itself), and a hung owner costs at most
// closeTimeout, not one reqTimeout per owner. The returned error is the
// first failure — callers tearing down after a replica crash should
// expect (and may ignore) one.
func (s *httpSession) Close() error {
	if s.closed.CompareAndSwap(false, true) && s.counted {
		mClientSessionsOpen.Add(-1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), closeTimeout)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for li, reps := range s.t.lists {
		for _, r := range reps {
			if !s.state[li].acked[r.index] {
				continue
			}
			wg.Add(1)
			go func(r *replica) {
				defer wg.Done()
				err := s.t.doJSON(ctx, r, http.MethodPost, "/session/close", sessionBody{SID: s.sid}, nil)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(r)
		}
	}
	wg.Wait()
	return firstErr
}
