package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"topk/internal/bestpos"
	"topk/internal/list"
)

// The HTTP backend: a real owner server (one list per process) and an
// originator client. Every data-plane message carries its query session
// ID in the `sid` query parameter, so one owner serves any number of
// concurrent originators:
//
//	POST /session/open   control-plane: install fresh per-session state
//	                     {sid, tracker}; idempotent per sid
//	POST /session/close  control-plane: release a session's state {sid}
//	POST /rpc/{kind}?sid=...  one exchange; body and response are the
//	                     message structs of this package, encoded by the
//	                     negotiated wire codec (kind "batch" carries a
//	                     coalesced round for this owner)
//	GET  /stats?sid=...  control-plane: the session's OwnerStats;
//	                     without sid, the owner's list metadata
//	                     (the dial handshake, which also advertises the
//	                     wire codecs the owner speaks)
//	POST /reset          deprecated no-op, kept for pre-session clients
//	GET  /healthz        liveness
//
// The /rpc data plane speaks two codecs, negotiated via Content-Type:
// the length-prefixed little-endian binary codec (codec.go) is the
// default whenever every owner advertises it in the dial handshake, and
// JSON remains the fallback for old owners and the debugging surface
// (HTTPClient.SetWireFormat). The server answers in the codec the
// request arrived in, so one owner serves binary and JSON clients at
// once; error payloads are always JSON. encoding/json renders float64s
// in their shortest round-tripping form and the binary codec ships raw
// IEEE-754 bits, so scores survive either wire bit-identically and the
// parity suite can hold HTTP to the same answers and accounting as the
// in-process backends. Non-finite list scores are not supported on the
// JSON codec (JSON has no infinities); the +Inf best-position
// piggyback, which is protocol vocabulary rather than list data, is
// handled there by Upper — the binary codec carries it natively.

// Server is one list owner behind HTTP. Wrap Handler in an http.Server
// (or httptest.Server); cmd/topk-owner is the standalone binary.
type Server struct {
	owner *Owner
	mux   *http.ServeMux
}

// NewServer returns the HTTP owner of list index of db.
func NewServer(db *list.Database, index int) (*Server, error) {
	o, err := NewOwner(db, index)
	if err != nil {
		return nil, err
	}
	s := &Server{owner: o, mux: http.NewServeMux()}
	s.mux.HandleFunc("/rpc/", s.handleRPC)
	s.mux.HandleFunc("/session/open", s.handleOpen)
	s.mux.HandleFunc("/session/close", s.handleClose)
	s.mux.HandleFunc("/reset", s.handleReset)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Owner returns the owner behind the server, for white-box inspection in
// tests (open session counts).
func (s *Server) Owner() *Owner { return s.owner }

// httpError is the uniform error payload.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // status line already out
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, httpError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	sid := r.URL.Query().Get("sid")
	if sid == "" {
		// The dial handshake: list metadata, no session state.
		writeJSON(w, http.StatusOK, s.owner.Info())
		return
	}
	st, err := s.owner.SessionStats(sid)
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// statusFor maps an owner error to its HTTP status: unknown sessions are
// 404 (gone, not malformed), everything else a caller-fault 400.
func statusFor(err error) int {
	if errors.Is(err, ErrUnknownSession) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// sessionBody is the /session/open and /session/close request payload.
type sessionBody struct {
	SID     string `json:"sid"`
	Tracker uint8  `json:"tracker"`
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var body sessionBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad session body: %v", err)
		return
	}
	kind := bestpos.Kind(body.Tracker)
	found := false
	for _, k := range bestpos.Kinds() {
		if k == kind {
			found = true
			break
		}
	}
	if !found {
		writeError(w, http.StatusBadRequest, "unknown tracker kind %d", body.Tracker)
		return
	}
	if body.SID == "" {
		writeError(w, http.StatusBadRequest, "empty session ID")
		return
	}
	if err := s.owner.Open(body.SID, kind); err != nil {
		// The session limit is owner overload, not a malformed request.
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var body sessionBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad session body: %v", err)
		return
	}
	s.owner.CloseSession(body.SID)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReset is the pre-session control plane: it used to wipe the
// owner's single global query session. Owner state is keyed by session
// ID now, so there is nothing to reset. The endpoint stays as an
// acknowledged no-op so old control planes don't hard-fail on 404 —
// their data-plane calls still get a clear "missing sid" 400 telling
// them to upgrade; it never touches live sessions.
func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	io.Copy(io.Discard, io.LimitReader(r.Body, 4096))
	writeJSON(w, http.StatusOK, map[string]string{"status": "deprecated no-op; sessions are keyed by sid"})
}

// maxRPCBody bounds a data-plane request body. Generous: the largest
// legitimate request is a TPUT phase-3 fetch of every item.
const maxRPCBody = 16 << 20

// appendAll reads r to EOF into dst — the pooled-buffer replacement for
// io.ReadAll on the hot path.
func appendAll(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

func (s *Server) handleRPC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	sid := r.URL.Query().Get("sid")
	if sid == "" {
		writeError(w, http.StatusBadRequest, "missing sid parameter (open a session first)")
		return
	}
	kind := Kind(strings.TrimPrefix(r.URL.Path, "/rpc/"))
	buf := getBuf()
	defer putBuf(buf)
	// Read one byte past the limit so an oversize body is a clear 413,
	// not a truncated-frame 400 that reads like corruption.
	body, err := appendAll(*buf, io.LimitReader(r.Body, maxRPCBody+1))
	*buf = body
	if err != nil {
		writeError(w, http.StatusBadRequest, "transport: read request body: %v", err)
		return
	}
	if len(body) > maxRPCBody {
		writeError(w, http.StatusRequestEntityTooLarge, "transport: request body exceeds %d bytes", maxRPCBody)
		return
	}
	// The request's Content-Type selects the codec; the response mirrors
	// it, so binary and JSON clients share one owner. Errors are always
	// JSON — they are control-plane, and the client's error path predates
	// the binary codec.
	binaryWire := r.Header.Get("Content-Type") == ContentTypeBinary
	var req Request
	if binaryWire {
		req, err = DecodeRequestBinary(body)
		if err == nil && req.Kind() != kind {
			err = fmt.Errorf("transport: frame kind %q does not match path kind %q", req.Kind(), kind)
		}
	} else {
		req, err = decodeRequestJSON(kind, body)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.owner.Handle(sid, req)
	if err != nil {
		// Owner errors are malformed requests (bad position, bad item)
		// or unknown sessions — the caller's fault either way, never
		// worth a retry.
		writeError(w, statusFor(err), "%v", err)
		return
	}
	if binaryWire {
		out := getBuf()
		defer putBuf(out)
		enc, err := AppendResponseBinary(*out, resp)
		*out = enc
		if err != nil {
			writeError(w, http.StatusInternalServerError, "transport: encode response: %v", err)
			return
		}
		w.Header().Set("Content-Type", ContentTypeBinary)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(enc)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeRequestJSON unmarshals the JSON body of a /rpc/{kind} call.
// Batches are handled here (one nesting level); the shared per-kind
// table rejects nested ones.
func decodeRequestJSON(kind Kind, body []byte) (Request, error) {
	if kind == KindBatch {
		var req BatchReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("transport: bad request body: %w", err)
		}
		return req, nil
	}
	return UnmarshalRequestJSON(kind, body)
}

// decodeResponseJSON unmarshals the JSON response of a /rpc/{kind} call.
func decodeResponseJSON(kind Kind, body []byte) (Response, error) {
	if kind == KindBatch {
		var resp BatchResp
		if err := json.Unmarshal(body, &resp); err != nil {
			return nil, fmt.Errorf("transport: bad message body: %w", err)
		}
		return resp, nil
	}
	return UnmarshalResponseJSON(kind, body)
}

// WireFormat selects the /rpc data-plane codec of an HTTPClient.
type WireFormat uint8

const (
	// WireAuto uses the binary codec when every owner advertised it in
	// the dial handshake, JSON otherwise. The default.
	WireAuto WireFormat = iota
	// WireJSON forces the JSON codec — the debugging surface, and the
	// escape hatch for owners that mis-advertise.
	WireJSON
	// WireBinary forces the binary codec even against owners that did
	// not advertise it (their requests will fail with 400s).
	WireBinary
)

// HTTPClient is the originator side of the HTTP backend: one base URL
// per owner, exchanges as POSTs, batches fanned out with one goroutine
// per addressed owner. The client is shared infrastructure — sessions
// opened on it run concurrently over one pooled http.Client — and every
// request gets its own timeout plus a single retry on transient owner
// failures (connection errors, 5xx), with the owner index wrapped into
// every error.
type HTTPClient struct {
	urls []string
	hc   *http.Client
	n    int

	// reqTimeout bounds each HTTP attempt; see SetRequestTimeout.
	reqTimeout time.Duration

	// wire selects the data-plane codec; binNegotiated records whether
	// every owner advertised the binary codec at dial time (consulted
	// under WireAuto).
	wire          WireFormat
	binNegotiated bool
}

// defaultHTTPClient builds the pooled client Dial uses when the caller
// passes nil. net/http's zero-value Transport keeps only 2 idle
// connections per host, so a fleet of concurrent originators hammering
// the same few owners would re-handshake TCP on nearly every exchange;
// the tuned pool keeps one warm connection per in-flight originator.
func defaultHTTPClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}}
}

// NormalizeOwnerURL turns a host:port (or full URL) into the base URL of
// an owner server.
func NormalizeOwnerURL(s string) string {
	s = strings.TrimSuffix(strings.TrimSpace(s), "/")
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}

// DefaultTimeout bounds each exchange attempt of the HTTP client: an
// owner that hangs mid-query must error the run, not stall the
// originator forever. Generous, because a TPUT phase-2 response can
// carry a whole list tail.
const DefaultTimeout = 30 * time.Second

// Dial connects to the owner servers — urls[i] must serve list i — and
// validates the cluster: every owner must report its expected list
// index, the shared list length, and a database of exactly len(urls)
// lists. The handshake also negotiates the wire codec: when every owner
// advertises the binary codec, the data plane uses it (see
// SetWireFormat). Requests are bounded per-attempt by DefaultTimeout
// (see SetRequestTimeout); a nil client gets a connection pool tuned for
// many concurrent originators against few owners — pass an explicit
// client to control the transport yourself (pooling, TLS).
func Dial(urls []string, hc *http.Client) (*HTTPClient, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("transport: no owner URLs")
	}
	if hc == nil {
		hc = defaultHTTPClient()
	}
	t := &HTTPClient{urls: make([]string, len(urls)), hc: hc, reqTimeout: DefaultTimeout}
	for i, u := range urls {
		t.urls[i] = NormalizeOwnerURL(u)
	}
	ctx := context.Background()
	allBinary := true
	for i := range t.urls {
		st, err := t.ownerInfo(ctx, i)
		if err != nil {
			return nil, err
		}
		if st.Index != i {
			return nil, fmt.Errorf("transport: owner %d (%s) serves list %d; order --owners by list index",
				i, t.urls[i], st.Index)
		}
		if st.M != len(urls) {
			return nil, fmt.Errorf("transport: owner %d (%s) belongs to a database of %d lists, cluster has %d owners",
				i, t.urls[i], st.M, len(urls))
		}
		if i == 0 {
			t.n = st.N
		} else if st.N != t.n {
			return nil, fmt.Errorf("transport: owner %d (%s) has %d items, owner 0 has %d",
				i, t.urls[i], st.N, t.n)
		}
		ownerBinary := false
		for _, c := range st.Codecs {
			if c == CodecBinary {
				ownerBinary = true
				break
			}
		}
		allBinary = allBinary && ownerBinary
	}
	t.binNegotiated = allBinary
	return t, nil
}

// SetWireFormat overrides the dial-time codec negotiation (default
// WireAuto: binary when every owner advertises it). Set it before
// opening sessions.
func (t *HTTPClient) SetWireFormat(f WireFormat) { t.wire = f }

// binaryWire reports whether /rpc exchanges travel in the binary codec.
func (t *HTTPClient) binaryWire() bool {
	switch t.wire {
	case WireJSON:
		return false
	case WireBinary:
		return true
	default:
		return t.binNegotiated
	}
}

// SetRequestTimeout changes the per-attempt bound on every subsequent
// exchange (default DefaultTimeout). Set it before opening sessions.
func (t *HTTPClient) SetRequestTimeout(d time.Duration) {
	if d > 0 {
		t.reqTimeout = d
	}
}

// M returns the number of owners.
func (t *HTTPClient) M() int { return len(t.urls) }

// N returns the shared list length.
func (t *HTTPClient) N() int { return t.n }

func (t *HTTPClient) checkOwner(owner int) error {
	if owner < 0 || owner >= len(t.urls) {
		return fmt.Errorf("transport: owner %d out of range [0,%d)", owner, len(t.urls))
	}
	return nil
}

// transientStatus reports whether a response status is worth one retry:
// the owner (or an intermediary) failed, rather than rejecting the
// request.
func transientStatus(status int) bool { return status >= 500 }

// transientErr reports whether a transport-level failure is worth one
// retry: connection resets, refused connections and per-attempt
// timeouts — but never the caller's own cancellation, and never
// failures that cannot succeed on a second identical attempt (a URL
// that does not parse, a name that authoritatively does not resolve).
func transientErr(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	var dns *net.DNSError
	if errors.As(err, &dns) && dns.IsNotFound {
		return false
	}
	// The parent ctx is alive, so a deadline/cancel inside the attempt
	// came from the per-attempt timeout — an owner hang, transient by
	// definition. Everything else left at this level is a network error.
	return true
}

// attempt performs one HTTP round-trip under the per-attempt timeout.
// The returned status is 0 when no response arrived.
func (t *HTTPClient) attempt(ctx context.Context, method, url string, body []byte, contentType string, decode func(io.Reader) error) (int, error) {
	actx, cancel := context.WithTimeout(ctx, t.reqTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		// Request construction never touched the network; retrying the
		// same inputs is futile.
		return http.StatusBadRequest, err
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, remoteError(resp)
	}
	if decode != nil {
		return resp.StatusCode, decode(resp.Body)
	}
	return resp.StatusCode, nil
}

// doBytes performs one exchange with owner, body pre-encoded, retrying
// once on transient failures (connection errors, per-attempt timeouts,
// 5xx) — the first step toward owner failover. The retry is attempted
// only when replayable: a lost response leaves the caller unable to tell
// whether the owner executed the request, so cursor-advancing exchanges
// (probe, above, or a batch containing one) must fail instead of
// silently skipping list entries. Errors carry the owner index.
func (t *HTTPClient) doBytes(ctx context.Context, owner int, method, path string, body []byte, contentType string, replayable bool, decode func(io.Reader) error) error {
	tries := 1
	if replayable {
		tries = 2
	}
	var lastErr error
	for attempt := 0; attempt < tries; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		status, err := t.attempt(ctx, method, t.urls[owner]+path, body, contentType, decode)
		if err == nil {
			return nil
		}
		lastErr = err
		if !transientStatus(status) && (status != 0 || !transientErr(ctx, err)) {
			break
		}
	}
	return fmt.Errorf("transport: owner %d (%s): %w", owner, t.urls[owner], lastErr)
}

// do is the JSON control-plane exchange: marshal body, doBytes.
func (t *HTTPClient) do(ctx context.Context, owner int, method, path string, body any, replayable bool, decode func(io.Reader) error) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return fmt.Errorf("transport: owner %d (%s): encode request: %w", owner, t.urls[owner], err)
		}
	}
	return t.doBytes(ctx, owner, method, path, buf, ContentTypeJSON, replayable, decode)
}

// RemoteError is a non-200 reply from an owner server. It is a distinct
// type so upstream layers (the serve API) can tell an owner-side
// failure from the caller's own bad request and map it to 502 instead
// of 400.
type RemoteError struct {
	// Status is the HTTP status the owner answered with.
	Status int
	// Msg is the owner's error payload, if it sent one.
	Msg string
}

// Error renders the owner's message when present, the status otherwise.
func (e *RemoteError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("transport: remote: %s", e.Msg)
	}
	return fmt.Sprintf("transport: remote status %d", e.Status)
}

// remoteError lifts a non-200 reply into a RemoteError.
func remoteError(resp *http.Response) error {
	var body httpError
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err == nil && body.Error != "" {
		return &RemoteError{Status: resp.StatusCode, Msg: body.Error}
	}
	return &RemoteError{Status: resp.StatusCode}
}

// ownerInfo fetches an owner's list metadata (the dial handshake).
func (t *HTTPClient) ownerInfo(ctx context.Context, owner int) (OwnerStats, error) {
	if err := t.checkOwner(owner); err != nil {
		return OwnerStats{}, err
	}
	var st OwnerStats
	err := t.do(ctx, owner, http.MethodGet, "/stats", nil, true, func(body io.Reader) error {
		return json.NewDecoder(body).Decode(&st)
	})
	return st, err
}

// Open starts a query session at every owner, fanned out in parallel —
// opening is control-plane, but a serial loop would still cost m
// round-trips of real latency per query. On partial failure the
// already-opened owners are closed again, best-effort.
func (t *HTTPClient) Open(ctx context.Context, tracker bestpos.Kind) (Session, error) {
	sid := NewSessionID()
	body := sessionBody{SID: sid, Tracker: uint8(tracker)}
	errs := make([]error, len(t.urls))
	var wg sync.WaitGroup
	for i := range t.urls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = t.do(ctx, i, http.MethodPost, "/session/open", body, true, nil)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s := &httpSession{t: t, sid: sid}
			_ = s.Close()
			return nil, err
		}
	}
	return &httpSession{t: t, sid: sid}, nil
}

// Close releases idle connections. Sessions should be closed first.
func (t *HTTPClient) Close() error {
	t.hc.CloseIdleConnections()
	return nil
}

// httpSession is one query over the shared HTTP client. Elapsed
// accumulates real time the way the Concurrent backend accumulates
// virtual time: a batch costs its slowest owner, not the sum.
type httpSession struct {
	t   *HTTPClient
	sid string

	mu      sync.Mutex
	elapsed time.Duration
}

// ID returns the session ID.
func (s *httpSession) ID() string { return s.sid }

func (s *httpSession) addElapsed(d time.Duration) {
	s.mu.Lock()
	s.elapsed += d
	s.mu.Unlock()
}

// rpcPath is the data-plane URL of one request kind for this session.
func (s *httpSession) rpcPath(kind Kind) string {
	return "/rpc/" + string(kind) + "?sid=" + s.sid
}

// exchange performs one uninstrumented request/response round-trip in
// the negotiated wire codec. Both the request and response bodies pass
// through pooled buffers; decoded messages own their memory, so nothing
// aliases a pooled slice after return.
func (s *httpSession) exchange(ctx context.Context, owner int, req Request) (Response, error) {
	kind := req.Kind()
	binary := s.t.binaryWire()
	enc := getBuf()
	defer putBuf(enc)
	var err error
	if binary {
		*enc, err = AppendRequestBinary(*enc, req)
	} else {
		*enc, err = json.Marshal(req)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: owner %d (%s): encode request: %w", owner, s.t.urls[owner], err)
	}
	ct := ContentTypeJSON
	if binary {
		ct = ContentTypeBinary
	}
	var out Response
	err = s.t.doBytes(ctx, owner, http.MethodPost, s.rpcPath(kind), *enc, ct, req.Replayable(), func(body io.Reader) error {
		dec := getBuf()
		defer putBuf(dec)
		data, rerr := appendAll(*dec, body)
		*dec = data
		if rerr != nil {
			return rerr
		}
		var derr error
		if binary {
			out, derr = DecodeResponseBinary(data)
		} else {
			out, derr = decodeResponseJSON(kind, data)
		}
		return derr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Do performs one exchange and charges its real round-trip time.
func (s *httpSession) Do(ctx context.Context, owner int, req Request) (Response, error) {
	if err := s.t.checkOwner(owner); err != nil {
		return nil, err
	}
	start := time.Now()
	resp, err := s.exchange(ctx, owner, req)
	if err != nil {
		return nil, err
	}
	s.addElapsed(time.Since(start))
	return resp, nil
}

// DoAll fans the calls out with one goroutine per addressed owner, each
// owner's calls in submission order, and charges the slowest owner's
// serialized time. The per-owner goroutines stop at the first error of
// their own owner and on ctx cancellation.
func (s *httpSession) DoAll(ctx context.Context, calls []Call) ([]Response, error) {
	for _, c := range calls {
		if err := s.t.checkOwner(c.Owner); err != nil {
			return nil, err
		}
	}
	byOwner := make(map[int][]int)
	for idx, c := range calls {
		byOwner[c.Owner] = append(byOwner[c.Owner], idx)
	}
	out := make([]Response, len(calls))
	errs := make([]error, len(calls))
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		slowest time.Duration
	)
	for owner, idxs := range byOwner {
		wg.Add(1)
		go func(owner int, idxs []int) {
			defer wg.Done()
			start := time.Now()
			for _, idx := range idxs {
				if err := ctx.Err(); err != nil {
					errs[idx] = err
					return
				}
				resp, err := s.exchange(ctx, owner, calls[idx].Req)
				if err != nil {
					errs[idx] = err
					return
				}
				out[idx] = resp
			}
			mu.Lock()
			if d := time.Since(start); d > slowest {
				slowest = d
			}
			mu.Unlock()
		}(owner, idxs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s.addElapsed(slowest)
	return out, nil
}

// Stats reports an owner's bookkeeping for this session.
func (s *httpSession) Stats(ctx context.Context, owner int) (OwnerStats, error) {
	if err := s.t.checkOwner(owner); err != nil {
		return OwnerStats{}, err
	}
	var st OwnerStats
	err := s.t.do(ctx, owner, http.MethodGet, "/stats?sid="+s.sid, nil, true, func(body io.Reader) error {
		return json.NewDecoder(body).Decode(&st)
	})
	return st, err
}

// Elapsed returns the real time this session has spent in exchanges.
func (s *httpSession) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.elapsed
}

// closeTimeout caps the whole best-effort session teardown. Close runs
// on the cancellation path — a caller abandoning a query must get
// control back promptly even when an owner hangs — so it does not get
// the generous data-plane budget.
const closeTimeout = 2 * time.Second

// Close releases the session's owner-side state, best-effort and in
// parallel: every owner is attempted under a fresh short-lived
// control-plane context (so a canceled query still cleans up after
// itself), and a hung owner costs at most closeTimeout, not one
// reqTimeout per owner.
func (s *httpSession) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeTimeout)
	defer cancel()
	errs := make([]error, len(s.t.urls))
	var wg sync.WaitGroup
	for i := range s.t.urls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.t.do(ctx, i, http.MethodPost, "/session/close", sessionBody{SID: s.sid}, true, nil)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
