package transport

import (
	"context"
	"fmt"
	"time"

	"topk/internal/bestpos"
	"topk/internal/list"
)

// Loopback is the in-process backend: every exchange is a direct method
// call on the owner, served inline in call order. Deterministic and
// allocation-light — the default for simulation, tests and the DHT
// overlay pricing. Sessions make it safe to drive several queries over
// one Loopback concurrently, though each session is itself sequential.
type Loopback struct {
	owners []*Owner
	n      int
}

// NewLoopback builds one in-process owner per list of db.
func NewLoopback(db *list.Database) (*Loopback, error) {
	if db == nil {
		return nil, fmt.Errorf("transport: nil database")
	}
	t := &Loopback{owners: make([]*Owner, db.M()), n: db.N()}
	for i := range t.owners {
		o, err := NewOwner(db, i)
		if err != nil {
			return nil, err
		}
		t.owners[i] = o
	}
	return t, nil
}

// M returns the number of owners.
func (t *Loopback) M() int { return len(t.owners) }

// N returns the shared list length.
func (t *Loopback) N() int { return t.n }

// checkOwner validates an owner index.
func (t *Loopback) checkOwner(owner int) error {
	if owner < 0 || owner >= len(t.owners) {
		return fmt.Errorf("transport: owner %d out of range [0,%d)", owner, len(t.owners))
	}
	return nil
}

// Open starts a query session at every owner.
func (t *Loopback) Open(ctx context.Context, tracker bestpos.Kind) (Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sid := NewSessionID()
	if err := openAll(t.owners, sid, tracker); err != nil {
		return nil, err
	}
	return &loopbackSession{t: t, sid: sid}, nil
}

// Close is a no-op: loopback owners hold no external resources.
func (t *Loopback) Close() error { return nil }

// loopbackSession serves one query's exchanges inline.
type loopbackSession struct {
	t   *Loopback
	sid string

	// rec collects per-exchange trace spans when armed (SpanRecording).
	rec *SpanRecorder
}

// ID returns the session ID.
func (s *loopbackSession) ID() string { return s.sid }

// SetSpanRecorder arms (or, with nil, disarms) per-exchange tracing.
func (s *loopbackSession) SetSpanRecorder(r *SpanRecorder) { s.rec = r }

// Do serves the exchange inline; a canceled ctx aborts before the owner
// is touched.
func (s *loopbackSession) Do(ctx context.Context, owner int, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.t.checkOwner(owner); err != nil {
		return nil, err
	}
	if s.rec == nil {
		return s.t.owners[owner].HandleContext(ctx, s.sid, req)
	}
	start := time.Now()
	resp, err := s.t.owners[owner].HandleContext(ctx, s.sid, req)
	// In-process: no replica, no serialization — replica -1, zero bytes.
	s.rec.Record(Span{Owner: owner, Replica: -1, URL: "loopback", Kind: req.Kind(),
		Msgs: logicalMessages(req), Duration: time.Since(start), Attempts: 1, Err: errString(err)})
	return resp, err
}

// DoAll serves the calls sequentially in order.
func (s *loopbackSession) DoAll(ctx context.Context, calls []Call) ([]Response, error) {
	out := make([]Response, len(calls))
	for i, c := range calls {
		resp, err := s.Do(ctx, c.Owner, c.Req)
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

// Stats reports an owner's bookkeeping for this session.
func (s *loopbackSession) Stats(ctx context.Context, owner int) (OwnerStats, error) {
	if err := ctx.Err(); err != nil {
		return OwnerStats{}, err
	}
	if err := s.t.checkOwner(owner); err != nil {
		return OwnerStats{}, err
	}
	return s.t.owners[owner].SessionStats(s.sid)
}

// Elapsed is always zero: loopback delivery is instantaneous.
func (s *loopbackSession) Elapsed() time.Duration { return 0 }

// Close releases the session's owner-side state.
func (s *loopbackSession) Close() error {
	closeAll(s.t.owners, s.sid)
	return nil
}
