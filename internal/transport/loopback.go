package transport

import (
	"fmt"
	"time"

	"topk/internal/bestpos"
	"topk/internal/list"
)

// Loopback is the in-process backend: every exchange is a direct method
// call on the owner, served inline in call order. Deterministic and
// allocation-light — the default for simulation, tests and the DHT
// overlay pricing.
type Loopback struct {
	owners []*Owner
	n      int
}

// NewLoopback builds one in-process owner per list of db.
func NewLoopback(db *list.Database) (*Loopback, error) {
	if db == nil {
		return nil, fmt.Errorf("transport: nil database")
	}
	t := &Loopback{owners: make([]*Owner, db.M()), n: db.N()}
	for i := range t.owners {
		o, err := NewOwner(db, i)
		if err != nil {
			return nil, err
		}
		t.owners[i] = o
	}
	return t, nil
}

// M returns the number of owners.
func (t *Loopback) M() int { return len(t.owners) }

// N returns the shared list length.
func (t *Loopback) N() int { return t.n }

// checkOwner validates an owner index.
func (t *Loopback) checkOwner(owner int) error {
	if owner < 0 || owner >= len(t.owners) {
		return fmt.Errorf("transport: owner %d out of range [0,%d)", owner, len(t.owners))
	}
	return nil
}

// Do serves the exchange inline.
func (t *Loopback) Do(owner int, req Request) (Response, error) {
	if err := t.checkOwner(owner); err != nil {
		return nil, err
	}
	return t.owners[owner].Handle(req)
}

// DoAll serves the calls sequentially in order.
func (t *Loopback) DoAll(calls []Call) ([]Response, error) {
	out := make([]Response, len(calls))
	for i, c := range calls {
		resp, err := t.Do(c.Owner, c.Req)
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

// Reset prepares every owner for a new query.
func (t *Loopback) Reset(kind bestpos.Kind) error {
	for _, o := range t.owners {
		o.Reset(kind)
	}
	return nil
}

// Stats reports an owner's bookkeeping.
func (t *Loopback) Stats(owner int) (OwnerStats, error) {
	if err := t.checkOwner(owner); err != nil {
		return OwnerStats{}, err
	}
	return t.owners[owner].Stats(), nil
}

// Elapsed is always zero: loopback delivery is instantaneous.
func (t *Loopback) Elapsed() time.Duration { return 0 }

// Close is a no-op.
func (t *Loopback) Close() error { return nil }
