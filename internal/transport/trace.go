package transport

import (
	"sync"
	"time"
)

// Span is one wire exchange as a traced query saw it: which owner and
// replica served it, what traveled, how long it took, and whether the
// recovery machinery (retries, failover, handoff) had to step in. The
// dist runner stamps the protocol round; the transport backends fill
// in everything else at the point where the exchange actually runs —
// the only place that knows the chosen replica and the wire bytes.
type Span struct {
	// Seq is the record order (0-based). Within a fanned-out round the
	// completion order is scheduling-dependent; Seq reflects it.
	Seq int `json:"seq"`
	// Round is the protocol round the exchange belongs to, 1-based,
	// as counted by Net.Rounds. 0 for exchanges outside any round.
	Round int `json:"round"`
	// Owner is the list index addressed.
	Owner int `json:"owner"`
	// Replica is the replica index within the list's replica set that
	// answered; -1 for the in-process backends, which have no replicas.
	Replica int `json:"replica"`
	// URL is the answering replica's base URL; "loopback" or
	// "concurrent" for the in-process backends.
	URL string `json:"url"`
	// Kind is the wire message kind ("batch" for a coalesced round).
	Kind Kind `json:"kind"`
	// Msgs is the logical message count: the batch length for a
	// coalesced exchange, 1 otherwise. Summed over a query's spans it
	// reconciles with Net.Messages.
	Msgs int `json:"msgs"`
	// ReqBytes and RespBytes are the encoded wire sizes; zero on the
	// in-process backends, which never serialize.
	ReqBytes  int `json:"req_bytes"`
	RespBytes int `json:"resp_bytes"`
	// Duration is the exchange's cost: real round-trip time (including
	// retries and failover) on HTTP and Loopback, the latency model's
	// virtual cost on Concurrent.
	Duration time.Duration `json:"duration"`
	// Attempts is the number of wire attempts spent (1 = clean).
	Attempts int `json:"attempts"`
	// FailedOver marks an exchange answered by a different replica
	// than first targeted; Handoff marks a sessionful exchange that
	// re-pinned the session to its synced mirror mid-flight.
	FailedOver bool `json:"failed_over,omitempty"`
	Handoff    bool `json:"handoff,omitempty"`
	// Err is the terminal error of a failed exchange, "" on success.
	Err string `json:"err,omitempty"`
}

// SpanRecorder collects the spans of one traced query. Safe for
// concurrent use: DoAll fan-outs record from one goroutine per list.
// The round is stamped by whoever drives the protocol (the dist
// runner) via SetRound; recording sites never know it.
type SpanRecorder struct {
	mu    sync.Mutex
	round int
	spans []Span
}

// NewSpanRecorder returns an empty recorder.
func NewSpanRecorder() *SpanRecorder { return &SpanRecorder{} }

// SetRound stamps subsequent spans with protocol round n.
func (r *SpanRecorder) SetRound(n int) {
	r.mu.Lock()
	r.round = n
	r.mu.Unlock()
}

// Record appends one span, assigning its Seq and the current round.
func (r *SpanRecorder) Record(sp Span) {
	r.mu.Lock()
	sp.Seq = len(r.spans)
	sp.Round = r.round
	r.spans = append(r.spans, sp)
	r.mu.Unlock()
}

// Spans returns the recorded spans in record order. The returned slice
// is a copy; the recorder may keep recording.
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// SpanRecording is the optional Session capability the dist runner
// uses to arm tracing: a session that implements it records one Span
// per wire exchange into the given recorder (nil disarms). All three
// backends implement it. Arm before the first exchange — the field is
// read without synchronization on the data plane.
type SpanRecording interface {
	SetSpanRecorder(*SpanRecorder)
}

// logicalMessages is a request's logical message count: the batch
// length for a coalesced round, 1 otherwise — the unit Net.Messages
// charges.
func logicalMessages(req Request) int {
	if b, ok := req.(BatchReq); ok {
		return len(b.Reqs)
	}
	return 1
}

// errString renders an exchange error for a Span.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
