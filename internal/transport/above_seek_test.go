package transport

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"topk/internal/gen"
	"topk/internal/store/stripe"
)

// TestAboveSeekScoreParity pins the stripe fast path of the above scan:
// a stripe-backed owner answers phase-2 threshold scans through
// List.SeekScore (a fence binary search instead of a positional walk),
// and every response — entries, nil-vs-empty shape, and the session
// depth the next call resumes from — must be bit-identical to the plain
// positional loop a RAM-backed owner runs. The charged-read rule is the
// subtle part: even when the whole remaining tail is below T, the plain
// loop spends exactly one sorted access discovering that, so the seek
// path must perform (and charge) that read too.
func TestAboveSeekScoreParity(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 200, M: 1, Seed: 5})
	raw, err := stripe.WriteBytes(db, stripe.WriteOptions{StripeCap: 16, PosPageCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := stripe.OpenReader(bytes.NewReader(raw), int64(len(raw)), stripe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	disk, err := sdb.Database()
	if err != nil {
		t.Fatal(err)
	}

	// The comparison is only meaningful if the two owners genuinely take
	// different paths.
	if _, ok := disk.List(0).(scoreSeeker); !ok {
		t.Fatal("stripe list does not implement SeekScore; fast path untested")
	}
	if _, ok := db.List(0).(scoreSeeker); ok {
		t.Fatal("RAM list implements SeekScore; no plain loop to compare against")
	}

	ram, err := NewOwner(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	seek, err := NewOwner(disk, 0)
	if err != nil {
		t.Fatal(err)
	}

	top := db.List(0).At(1).Score
	mid := db.List(0).At(100).Score
	scenarios := []struct {
		name string
		reqs []Request
	}{
		{"full-scan", []Request{AboveReq{T: -1}}},
		{"nothing-above", []Request{AboveReq{T: top + 1}}},
		{"nothing-above-twice", []Request{AboveReq{T: top + 1}, AboveReq{T: top + 1}}},
		{"descending-thresholds", []Request{AboveReq{T: mid}, AboveReq{T: mid / 2}, AboveReq{T: 0}}},
		{"ascending-thresholds", []Request{AboveReq{T: mid}, AboveReq{T: top}, AboveReq{T: mid}}},
		{"after-sorted-reads", []Request{
			SortedReq{Pos: 1}, SortedReq{Pos: 2}, SortedReq{Pos: 3},
			AboveReq{T: mid}, AboveReq{T: top + 1}, AboveReq{T: -1},
		}},
		{"threshold-at-last-score", []Request{AboveReq{T: db.List(0).At(200).Score}}},
		{"threshold-at-first-score", []Request{AboveReq{T: top}}},
	}
	for i, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			sid := fmt.Sprintf("parity-%d", i)
			for j, req := range sc.reqs {
				want, werr := ram.Handle(sid, req)
				got, gerr := seek.Handle(sid, req)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("req %d: errors diverge: ram %v, stripe %v", j, werr, gerr)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("req %d (%#v): responses diverge:\n stripe %#v\n ram    %#v", j, req, got, want)
				}
			}
		})
	}
}
