package transport

import (
	"time"

	"topk/internal/obs"
)

// Metric handles of the transport layer, created once at package init
// so the hot path never touches the registry's maps: an instrumented
// exchange costs a map read on a read-only map plus a few atomic adds,
// and obs.Default.SetEnabled(false) reduces even those to a single
// atomic load. Nothing here feeds the paper's accounting — Net and
// access tallies are computed exactly as before — which is what lets
// the parity suites run bit-identical with metrics on.
//
// The catalogue (also in doc.go):
//
//	topk_owner_exchanges_total{kind}            counter    data-plane exchanges served
//	topk_owner_exchange_seconds{kind}           histogram  owner-side handling latency
//	topk_owner_exchange_errors_total{kind}      counter    exchanges answered with an error
//	topk_owner_wire_bytes_total{codec,direction} counter   /rpc body bytes (rx|tx, binary|json)
//	topk_owner_sessions_open                    gauge      live sessions
//	topk_owner_sessions_opened_total            counter
//	topk_owner_sessions_closed_total            counter
//	topk_owner_sessions_evicted_total           counter    TTL sweep reclaims
//	topk_owner_session_syncs_total              counter    mirrored state deltas applied
//	topk_owner_inflight_exchanges               gauge      data-plane exchanges being served now
//	topk_owner_shed_total                       counter    exchanges shed by admission control (429)
//	topk_owner_deadline_abandoned_total         counter    exchanges abandoned on an expired deadline budget
//
//	topk_client_exchanges_total{kind}           counter    exchanges completed by originators
//	topk_client_exchange_seconds{kind}          histogram  full exchange latency (incl. retries)
//	topk_client_exchange_errors_total{kind}     counter    exchanges that failed terminally
//	topk_client_wire_bytes_total{codec,direction} counter  encoded request (tx) / response (rx) bytes
//	topk_client_exchange_bytes                  histogram  request+response size per exchange
//	topk_client_retries_total                   counter    extra attempts beyond the first
//	topk_client_failovers_total                 counter    exchanges answered by a sibling replica
//	topk_client_handoffs_total                  counter    session pin-to-mirror handoffs
//	topk_client_mirror_promotions_total         counter    fresh mirrors promoted from pin state
//	topk_client_replica_failures_total          counter    transport-level replica failures
//	topk_client_health_transitions_total{to}    counter    healthy<->unhealthy flips
//	topk_client_replica_healthy{list,replica}   gauge      last health verdict (0|1)
//	topk_client_probe_ewma_seconds{list,replica} gauge     EWMA round-trip latency
//	topk_client_breaker_open{list,replica}      gauge      circuit breaker open (0|1)
//	topk_client_breaker_transitions_total{to}   counter    breaker open<->closed flips
//	topk_client_backpressure_waits_total        counter    retry-after waits honored after an owner shed
//	topk_client_sessions_open                   gauge
//	topk_client_sessions_opened_total           counter
var rpcKinds = []Kind{KindSorted, KindLookup, KindProbe, KindMark, KindTopK, KindAbove, KindFetch, KindBatch, KindUpdate}

func counterPerKind(name, help string) map[Kind]*obs.Counter {
	out := make(map[Kind]*obs.Counter, len(rpcKinds))
	for _, k := range rpcKinds {
		out[k] = obs.GetCounter(name, help, obs.Labels{"kind": string(k)})
	}
	return out
}

func histogramPerKind(name, help string) map[Kind]*obs.Histogram {
	out := make(map[Kind]*obs.Histogram, len(rpcKinds))
	for _, k := range rpcKinds {
		out[k] = obs.GetHistogram(name, help, obs.Labels{"kind": string(k)}, obs.LatencyBuckets)
	}
	return out
}

// wireCounters is the {codec,direction} cross product of one byte
// counter family.
type wireCounters struct {
	binRx, binTx, jsonRx, jsonTx *obs.Counter
}

func wireCountersOf(name, help string) wireCounters {
	mk := func(codec, dir string) *obs.Counter {
		return obs.GetCounter(name, help, obs.Labels{"codec": codec, "direction": dir})
	}
	return wireCounters{
		binRx:  mk(CodecBinary, "rx"),
		binTx:  mk(CodecBinary, "tx"),
		jsonRx: mk(CodecJSON, "rx"),
		jsonTx: mk(CodecJSON, "tx"),
	}
}

// add charges rx and tx bytes to the codec's counters.
func (w wireCounters) add(binary bool, rx, tx int64) {
	if binary {
		w.binRx.Add(rx)
		w.binTx.Add(tx)
		return
	}
	w.jsonRx.Add(rx)
	w.jsonTx.Add(tx)
}

// Owner (server) side.
var (
	mOwnerExchanges    = counterPerKind("topk_owner_exchanges_total", "Data-plane exchanges served, by message kind.")
	mOwnerExchangeSec  = histogramPerKind("topk_owner_exchange_seconds", "Owner-side exchange handling latency in seconds, by message kind.")
	mOwnerExchangeErrs = counterPerKind("topk_owner_exchange_errors_total", "Data-plane exchanges answered with an error, by message kind.")
	mOwnerWireBytes    = wireCountersOf("topk_owner_wire_bytes_total", "Bytes on the /rpc data plane, by codec and direction.")
	mOwnerSessionsOpen = obs.GetGauge("topk_owner_sessions_open", "Sessions currently open at this owner.", nil)
	mOwnerSessOpened   = obs.GetCounter("topk_owner_sessions_opened_total", "Sessions opened over the owner's lifetime.", nil)
	mOwnerSessClosed   = obs.GetCounter("topk_owner_sessions_closed_total", "Sessions closed by their originator.", nil)
	mOwnerSessEvicted  = obs.GetCounter("topk_owner_sessions_evicted_total", "Idle sessions reclaimed by the TTL sweep.", nil)
	mOwnerSessionSyncs = obs.GetCounter("topk_owner_session_syncs_total", "Mirrored session-state deltas applied via /session/sync.", nil)
	mOwnerInflight     = obs.GetGauge("topk_owner_inflight_exchanges", "Data-plane exchanges being served right now.", nil)
	mOwnerShed         = obs.GetCounter("topk_owner_shed_total", "Data-plane exchanges shed by admission control before any work was done.", nil)
	mOwnerDeadline     = obs.GetCounter("topk_owner_deadline_abandoned_total", "Exchanges abandoned because their deadline budget expired mid-handling.", nil)
)

// Originator (client) side.
var (
	mClientExchanges    = counterPerKind("topk_client_exchanges_total", "Exchanges completed by this originator, by message kind.")
	mClientExchangeSec  = histogramPerKind("topk_client_exchange_seconds", "Full exchange latency in seconds (including retries and failover), by message kind.")
	mClientExchangeErrs = counterPerKind("topk_client_exchange_errors_total", "Exchanges that failed terminally, by message kind.")
	mClientWireBytes    = wireCountersOf("topk_client_wire_bytes_total", "Encoded bytes on the client data plane, by codec and direction.")
	mClientExchBytes    = obs.GetHistogram("topk_client_exchange_bytes", "Request plus response bytes per completed exchange.", nil, obs.SizeBuckets)
	mClientRetries      = obs.GetCounter("topk_client_retries_total", "Extra exchange attempts beyond the first.", nil)
	mClientFailovers    = obs.GetCounter("topk_client_failovers_total", "Exchanges answered by a different replica than first targeted.", nil)
	mClientHandoffs     = obs.GetCounter("topk_client_handoffs_total", "Session pin-to-mirror handoffs after a pinned replica failed.", nil)
	mClientPromotions   = obs.GetCounter("topk_client_mirror_promotions_total", "Fresh mirror replicas promoted from the pin's full session state.", nil)
	mClientReplicaFails = obs.GetCounter("topk_client_replica_failures_total", "Transport-level failures observed against replicas.", nil)
	mClientHealthUp     = obs.GetCounter("topk_client_health_transitions_total", "Replica health verdict flips, by direction.", obs.Labels{"to": "healthy"})
	mClientHealthDown   = obs.GetCounter("topk_client_health_transitions_total", "Replica health verdict flips, by direction.", obs.Labels{"to": "unhealthy"})
	mClientSessionsOpen = obs.GetGauge("topk_client_sessions_open", "Query sessions currently open on this originator.", nil)
	mClientSessOpened   = obs.GetCounter("topk_client_sessions_opened_total", "Query sessions opened over this originator's lifetime.", nil)

	mClientBreakerOpened = obs.GetCounter("topk_client_breaker_transitions_total", "Circuit breaker transitions, by direction.", obs.Labels{"to": "open"})
	mClientBreakerClosed = obs.GetCounter("topk_client_breaker_transitions_total", "Circuit breaker transitions, by direction.", obs.Labels{"to": "closed"})
	mClientBackpressure  = obs.GetCounter("topk_client_backpressure_waits_total", "Retry-after waits honored after an owner shed an exchange (429).", nil)
)

// replicaGauges returns the per-replica health, EWMA and breaker gauge
// handles, labelled by position in the topology. Dial installs them on
// each replica so observe() updates a cached handle instead of hitting
// the registry.
func replicaGauges(list, index int) (healthy, ewma, brk *obs.Gauge) {
	labels := obs.Labels{"list": itoa(list), "replica": itoa(index)}
	return obs.GetGauge("topk_client_replica_healthy", "Last health verdict per replica (1 healthy, 0 unhealthy).", labels),
		obs.GetGauge("topk_client_probe_ewma_seconds", "EWMA round-trip latency per replica, from probes and data-plane exchanges.", labels),
		obs.GetGauge("topk_client_breaker_open", "Circuit breaker state per replica (1 open or half-open, 0 closed).", labels)
}

// itoa is strconv.Itoa without the import weight in this file's hot
// companions; replica counts are tiny.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 && i > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// observeExchangeMetrics charges one terminally completed client
// exchange (success or failure) to the client-side metric families.
// attempts is the number of wire attempts spent: every attempt sent
// the request body, only a success received a response body.
func observeExchangeMetrics(kind Kind, binary bool, d time.Duration, reqBytes, respBytes, attempts int, failedOver bool, err error) {
	if err != nil {
		if c := mClientExchangeErrs[kind]; c != nil {
			c.Inc()
		}
	} else {
		if c := mClientExchanges[kind]; c != nil {
			c.Inc()
		}
		if h := mClientExchangeSec[kind]; h != nil {
			h.Observe(d.Seconds())
		}
		mClientExchBytes.Observe(float64(reqBytes + respBytes))
	}
	mClientWireBytes.add(binary, int64(respBytes), int64(reqBytes)*int64(attempts))
	if attempts > 1 {
		mClientRetries.Add(int64(attempts - 1))
	}
	if failedOver && err == nil {
		mClientFailovers.Inc()
	}
}
