package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"topk/internal/list"
)

// The binary wire codec of the HTTP backend: every message travels as one
// length-prefixed little-endian frame,
//
//	[1 byte kind code][4 bytes LE payload length][payload]
//
// with fixed-width scalars in the payload (u32 positions/items/counts,
// IEEE-754 bits for scores). Scores round-trip bit-exactly — including
// the +Inf best-position piggyback, which JSON cannot carry and the Upper
// type works around on the fallback path — and a typical exchange shrinks
// to a fifth of its JSON size. Batch frames nest one level: the payload
// is a u32 message count followed by that many inner frames.
//
// The codec is negotiated out of band: owners advertise "binary" in the
// Codecs field of their dial handshake, the client ships binary bodies
// under ContentTypeBinary when every owner does, and the JSON codec
// remains both the fallback for old owners and the debugging surface
// (force it with HTTPClient.SetWireFormat or topk-query -wire json).

// Content types of the two wire codecs.
const (
	ContentTypeJSON   = "application/json"
	ContentTypeBinary = "application/x-topk-binary"
)

// Codec names advertised in the dial handshake (OwnerStats.Codecs).
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
)

// MaxBatch bounds the inner messages of one batch frame — far above any
// real round (a TA round batches m-1 lookups per owner) but low enough
// that a corrupt count cannot drive a huge allocation.
const MaxBatch = 1 << 20

// Frame kind codes. These are wire format: never renumber.
const (
	codeSorted byte = 1 + iota
	codeLookup
	codeProbe
	codeMark
	codeTopK
	codeAbove
	codeFetch
	codeBatch
	codeUpdate
)

// kindCode maps a Kind to its frame byte.
func kindCode(k Kind) (byte, error) {
	switch k {
	case KindSorted:
		return codeSorted, nil
	case KindLookup:
		return codeLookup, nil
	case KindProbe:
		return codeProbe, nil
	case KindMark:
		return codeMark, nil
	case KindTopK:
		return codeTopK, nil
	case KindAbove:
		return codeAbove, nil
	case KindFetch:
		return codeFetch, nil
	case KindBatch:
		return codeBatch, nil
	case KindUpdate:
		return codeUpdate, nil
	default:
		return 0, fmt.Errorf("transport: unknown kind %q", k)
	}
}

// Flag bits of the one-byte flag fields.
const (
	flagHasPos    byte = 1 << 0 // LookupResp carries a position
	flagExhausted byte = 1 << 0 // ProbeResp/MarkResp: list fully seen
	flagEmpty     byte = 1 << 1 // ProbeResp: piggyback only, no entry
	flagApplied   byte = 1 << 0 // UpdateResp: the batch was applied (not a duplicate)
)

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// appendStr writes a u32-length-prefixed UTF-8 string.
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendEntry(b []byte, e list.Entry) []byte {
	b = appendU32(b, uint32(e.Item))
	return appendF64(b, e.Score)
}

// appendFrame writes one [code][len][payload] frame, where payload is
// produced by fill appending to the buffer — the length prefix is
// backfilled so no intermediate buffer is needed.
func appendFrame(dst []byte, code byte, fill func([]byte) ([]byte, error)) ([]byte, error) {
	dst = append(dst, code)
	lenAt := len(dst)
	dst = appendU32(dst, 0)
	body := len(dst)
	dst, err := fill(dst)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-body))
	return dst, nil
}

// AppendRequestBinary appends req as one binary frame.
func AppendRequestBinary(dst []byte, req Request) ([]byte, error) {
	code, err := kindCode(req.Kind())
	if err != nil {
		return nil, err
	}
	return appendFrame(dst, code, func(b []byte) ([]byte, error) {
		switch r := req.(type) {
		case SortedReq:
			return appendU32(b, uint32(r.Pos)), nil
		case LookupReq:
			b = appendU32(b, uint32(r.Item))
			var f byte
			if r.WantPos {
				f = flagHasPos
			}
			return append(b, f), nil
		case ProbeReq:
			return b, nil
		case MarkReq:
			return appendU32(b, uint32(r.Item)), nil
		case TopKReq:
			return appendU32(b, uint32(r.K)), nil
		case AboveReq:
			return appendF64(b, r.T), nil
		case FetchReq:
			b = appendU32(b, uint32(len(r.Items)))
			for _, d := range r.Items {
				b = appendU32(b, uint32(d))
			}
			return b, nil
		case UpdateReq:
			b = appendStr(b, r.Feed)
			b = appendU64(b, r.Seq)
			b = appendU32(b, uint32(len(r.Updates)))
			for _, u := range r.Updates {
				b = appendU32(b, uint32(u.Item))
				b = appendF64(b, u.Delta)
			}
			return b, nil
		case BatchReq:
			if len(r.Reqs) > MaxBatch {
				return nil, fmt.Errorf("transport: batch of %d exceeds limit %d", len(r.Reqs), MaxBatch)
			}
			b = appendU32(b, uint32(len(r.Reqs)))
			for _, inner := range r.Reqs {
				if inner.Kind() == KindBatch {
					return nil, fmt.Errorf("transport: batches must not nest")
				}
				var err error
				if b, err = AppendRequestBinary(b, inner); err != nil {
					return nil, err
				}
			}
			return b, nil
		default:
			return nil, fmt.Errorf("transport: unknown request type %T", req)
		}
	})
}

// AppendResponseBinary appends resp as one binary frame, tagged with the
// kind of the request it answers.
func AppendResponseBinary(dst []byte, resp Response) ([]byte, error) {
	kind, err := responseKind(resp)
	if err != nil {
		return nil, err
	}
	code, err := kindCode(kind)
	if err != nil {
		return nil, err
	}
	return appendFrame(dst, code, func(b []byte) ([]byte, error) {
		switch r := resp.(type) {
		case SortedResp:
			return appendEntry(b, r.Entry), nil
		case LookupResp:
			var f byte
			if r.HasPos {
				f = flagHasPos
			}
			b = append(b, f)
			b = appendF64(b, r.Score)
			if r.HasPos {
				b = appendU32(b, uint32(r.Pos))
			}
			return b, nil
		case ProbeResp:
			var f byte
			if r.Exhausted {
				f |= flagExhausted
			}
			if r.Empty {
				f |= flagEmpty
			}
			b = append(b, f)
			b = appendF64(b, float64(r.BestScore))
			if !r.Empty {
				b = appendEntry(b, r.Entry)
				b = appendU32(b, uint32(r.Pos))
			}
			return b, nil
		case MarkResp:
			var f byte
			if r.Exhausted {
				f = flagExhausted
			}
			b = append(b, f)
			b = appendF64(b, r.Score)
			b = appendF64(b, float64(r.BestScore))
			return appendU32(b, uint32(r.Pos)), nil
		case TopKResp:
			b = appendU32(b, uint32(len(r.Entries)))
			for _, e := range r.Entries {
				b = appendEntry(b, e)
			}
			return b, nil
		case AboveResp:
			b = appendU32(b, uint32(len(r.Entries)))
			for _, e := range r.Entries {
				b = appendEntry(b, e)
			}
			return b, nil
		case FetchResp:
			b = appendU32(b, uint32(len(r.Scores)))
			for _, s := range r.Scores {
				b = appendF64(b, s)
			}
			return b, nil
		case UpdateResp:
			var f byte
			if r.Applied {
				f = flagApplied
			}
			b = append(b, f)
			b = appendU64(b, r.Version)
			b = appendU32(b, uint32(len(r.Crossings)))
			for _, q := range r.Crossings {
				b = appendStr(b, q)
			}
			return b, nil
		case BatchResp:
			if len(r.Resps) > MaxBatch {
				return nil, fmt.Errorf("transport: batch of %d exceeds limit %d", len(r.Resps), MaxBatch)
			}
			b = appendU32(b, uint32(len(r.Resps)))
			for _, inner := range r.Resps {
				if _, ok := inner.(BatchResp); ok {
					return nil, fmt.Errorf("transport: batches must not nest")
				}
				var err error
				if b, err = AppendResponseBinary(b, inner); err != nil {
					return nil, err
				}
			}
			return b, nil
		default:
			return nil, fmt.Errorf("transport: unknown response type %T", resp)
		}
	})
}

// reader consumes one frame payload with bounds checking; every take
// fails cleanly on truncated input instead of panicking.
type reader struct {
	b []byte
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || len(r.b) < n {
		return nil, fmt.Errorf("transport: truncated frame: need %d bytes, have %d", n, len(r.b))
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// str reads a u32-length-prefixed string; the length is bounds-checked
// against the remaining payload by take.
func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) f64() (float64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func (r *reader) byte() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) entry() (list.Entry, error) {
	item, err := r.u32()
	if err != nil {
		return list.Entry{}, err
	}
	score, err := r.f64()
	if err != nil {
		return list.Entry{}, err
	}
	return list.Entry{Item: list.ItemID(int32(item)), Score: score}, nil
}

// count reads a u32 element count and sanity-checks it against the bytes
// actually present (each element occupies at least minSize bytes), so a
// corrupt count cannot drive a huge allocation.
func (r *reader) count(minSize int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(minSize) > int64(len(r.b)) {
		return 0, fmt.Errorf("transport: frame count %d exceeds payload", n)
	}
	return int(n), nil
}

// frame splits one [code][len][payload] frame off b.
func frame(b []byte) (code byte, payload, rest []byte, err error) {
	if len(b) < 5 {
		return 0, nil, nil, fmt.Errorf("transport: truncated frame header (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b[1:5])
	if uint64(n) > uint64(len(b)-5) {
		return 0, nil, nil, fmt.Errorf("transport: frame length %d exceeds body", n)
	}
	return b[0], b[5 : 5+n], b[5+n:], nil
}

// DecodeRequestBinary decodes exactly one request frame; trailing bytes
// are an error (an HTTP body carries one message).
func DecodeRequestBinary(b []byte) (Request, error) {
	req, rest, err := decodeRequestFrame(b, true)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after request frame", len(rest))
	}
	return req, nil
}

func decodeRequestFrame(b []byte, allowBatch bool) (Request, []byte, error) {
	code, payload, rest, err := frame(b)
	if err != nil {
		return nil, nil, err
	}
	r := reader{b: payload}
	var req Request
	switch code {
	case codeSorted:
		pos, err := r.u32()
		if err != nil {
			return nil, nil, err
		}
		req = SortedReq{Pos: int(int32(pos))}
	case codeLookup:
		item, err := r.u32()
		if err != nil {
			return nil, nil, err
		}
		f, err := r.byte()
		if err != nil {
			return nil, nil, err
		}
		req = LookupReq{Item: list.ItemID(int32(item)), WantPos: f&flagHasPos != 0}
	case codeProbe:
		req = ProbeReq{}
	case codeMark:
		item, err := r.u32()
		if err != nil {
			return nil, nil, err
		}
		req = MarkReq{Item: list.ItemID(int32(item))}
	case codeTopK:
		k, err := r.u32()
		if err != nil {
			return nil, nil, err
		}
		req = TopKReq{K: int(int32(k))}
	case codeAbove:
		t, err := r.f64()
		if err != nil {
			return nil, nil, err
		}
		req = AboveReq{T: t}
	case codeFetch:
		n, err := r.count(4)
		if err != nil {
			return nil, nil, err
		}
		// n == 0 decodes to a nil slice, matching the JSON codec, so the
		// two codecs round-trip to DeepEqual-identical messages.
		var items []list.ItemID
		for i := 0; i < n; i++ {
			v, err := r.u32()
			if err != nil {
				return nil, nil, err
			}
			items = append(items, list.ItemID(int32(v)))
		}
		req = FetchReq{Items: items}
	case codeUpdate:
		feed, err := r.str()
		if err != nil {
			return nil, nil, err
		}
		seq, err := r.u64()
		if err != nil {
			return nil, nil, err
		}
		n, err := r.count(12)
		if err != nil {
			return nil, nil, err
		}
		// n == 0 decodes to a nil slice, matching the JSON codec.
		var ups []ScoreUpdate
		for i := 0; i < n; i++ {
			item, err := r.u32()
			if err != nil {
				return nil, nil, err
			}
			delta, err := r.f64()
			if err != nil {
				return nil, nil, err
			}
			ups = append(ups, ScoreUpdate{Item: list.ItemID(int32(item)), Delta: delta})
		}
		req = UpdateReq{Feed: feed, Seq: seq, Updates: ups}
	case codeBatch:
		if !allowBatch {
			return nil, nil, fmt.Errorf("transport: batches must not nest")
		}
		n, err := r.count(5)
		if err != nil {
			return nil, nil, err
		}
		if n > MaxBatch {
			return nil, nil, fmt.Errorf("transport: batch of %d exceeds limit %d", n, MaxBatch)
		}
		var reqs []Request
		inner := r.b
		for i := 0; i < n; i++ {
			var one Request
			if one, inner, err = decodeRequestFrame(inner, false); err != nil {
				return nil, nil, fmt.Errorf("transport: batch[%d]: %w", i, err)
			}
			reqs = append(reqs, one)
		}
		r.b = inner
		req = BatchReq{Reqs: reqs}
	default:
		return nil, nil, fmt.Errorf("transport: unknown request code %d", code)
	}
	if len(r.b) != 0 {
		return nil, nil, fmt.Errorf("transport: %d trailing payload bytes in %d frame", len(r.b), code)
	}
	return req, rest, nil
}

// DecodeResponseBinary decodes exactly one response frame.
func DecodeResponseBinary(b []byte) (Response, error) {
	resp, rest, err := decodeResponseFrame(b, true)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after response frame", len(rest))
	}
	return resp, nil
}

func decodeResponseFrame(b []byte, allowBatch bool) (Response, []byte, error) {
	code, payload, rest, err := frame(b)
	if err != nil {
		return nil, nil, err
	}
	r := reader{b: payload}
	var resp Response
	switch code {
	case codeSorted:
		e, err := r.entry()
		if err != nil {
			return nil, nil, err
		}
		resp = SortedResp{Entry: e}
	case codeLookup:
		f, err := r.byte()
		if err != nil {
			return nil, nil, err
		}
		score, err := r.f64()
		if err != nil {
			return nil, nil, err
		}
		lr := LookupResp{Score: score, HasPos: f&flagHasPos != 0}
		if lr.HasPos {
			pos, err := r.u32()
			if err != nil {
				return nil, nil, err
			}
			lr.Pos = int(int32(pos))
		}
		resp = lr
	case codeProbe:
		f, err := r.byte()
		if err != nil {
			return nil, nil, err
		}
		best, err := r.f64()
		if err != nil {
			return nil, nil, err
		}
		pr := ProbeResp{BestScore: Upper(best), Exhausted: f&flagExhausted != 0, Empty: f&flagEmpty != 0}
		if !pr.Empty {
			if pr.Entry, err = r.entry(); err != nil {
				return nil, nil, err
			}
			pos, err := r.u32()
			if err != nil {
				return nil, nil, err
			}
			pr.Pos = int(int32(pos))
		}
		resp = pr
	case codeMark:
		f, err := r.byte()
		if err != nil {
			return nil, nil, err
		}
		score, err := r.f64()
		if err != nil {
			return nil, nil, err
		}
		best, err := r.f64()
		if err != nil {
			return nil, nil, err
		}
		pos, err := r.u32()
		if err != nil {
			return nil, nil, err
		}
		resp = MarkResp{Score: score, BestScore: Upper(best), Exhausted: f&flagExhausted != 0, Pos: int(int32(pos))}
	case codeTopK:
		entries, err := decodeEntries(&r)
		if err != nil {
			return nil, nil, err
		}
		resp = TopKResp{Entries: entries}
	case codeAbove:
		entries, err := decodeEntries(&r)
		if err != nil {
			return nil, nil, err
		}
		resp = AboveResp{Entries: entries}
	case codeFetch:
		n, err := r.count(8)
		if err != nil {
			return nil, nil, err
		}
		var scores []float64
		for i := 0; i < n; i++ {
			s, err := r.f64()
			if err != nil {
				return nil, nil, err
			}
			scores = append(scores, s)
		}
		resp = FetchResp{Scores: scores}
	case codeUpdate:
		f, err := r.byte()
		if err != nil {
			return nil, nil, err
		}
		version, err := r.u64()
		if err != nil {
			return nil, nil, err
		}
		n, err := r.count(4)
		if err != nil {
			return nil, nil, err
		}
		var crossings []string
		for i := 0; i < n; i++ {
			q, err := r.str()
			if err != nil {
				return nil, nil, err
			}
			crossings = append(crossings, q)
		}
		resp = UpdateResp{Applied: f&flagApplied != 0, Version: version, Crossings: crossings}
	case codeBatch:
		if !allowBatch {
			return nil, nil, fmt.Errorf("transport: batches must not nest")
		}
		n, err := r.count(5)
		if err != nil {
			return nil, nil, err
		}
		if n > MaxBatch {
			return nil, nil, fmt.Errorf("transport: batch of %d exceeds limit %d", n, MaxBatch)
		}
		var resps []Response
		inner := r.b
		for i := 0; i < n; i++ {
			var one Response
			if one, inner, err = decodeResponseFrame(inner, false); err != nil {
				return nil, nil, fmt.Errorf("transport: batch[%d]: %w", i, err)
			}
			resps = append(resps, one)
		}
		r.b = inner
		resp = BatchResp{Resps: resps}
	default:
		return nil, nil, fmt.Errorf("transport: unknown response code %d", code)
	}
	if len(r.b) != 0 {
		return nil, nil, fmt.Errorf("transport: %d trailing payload bytes in %d frame", len(r.b), code)
	}
	return resp, rest, nil
}

func decodeEntries(r *reader) ([]list.Entry, error) {
	n, err := r.count(12)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		// Preserve nil for empty entry lists: AboveResp builds its slice
		// with append, so nil is what the owner handler produced and what
		// the JSON codec round-trips.
		return nil, nil
	}
	entries := make([]list.Entry, n)
	for i := range entries {
		if entries[i], err = r.entry(); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// bufPool recycles the encode/decode buffers of the HTTP hot path: one
// request body and one response body per exchange, reused across
// exchanges and sessions instead of reallocated.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// getBuf returns an empty byte slice with pooled capacity; give it back
// with putBuf once nothing references it.
func getBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

func putBuf(b *[]byte) {
	// Oversized one-off buffers (a TPUT phase-2 tail) are dropped rather
	// than pinned in the pool forever.
	if cap(*b) <= 1<<20 {
		bufPool.Put(b)
	}
}
