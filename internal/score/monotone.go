package score

import "math/rand"

// CheckMonotone samples random score vectors and verifies that raising a
// single coordinate never lowers f. It returns false as soon as a
// counter-example is found. This is a statistical check used by tests and
// by the public API's validation mode, not a proof.
func CheckMonotone(f Func, arity, samples int, rng *rand.Rand) bool {
	if arity <= 0 || f == nil {
		return false
	}
	lo := make([]float64, arity)
	hi := make([]float64, arity)
	for s := 0; s < samples; s++ {
		for i := range lo {
			lo[i] = rng.Float64()*200 - 100
			hi[i] = lo[i]
		}
		// Raise a random non-empty subset of coordinates.
		raised := false
		for i := range hi {
			if rng.Intn(2) == 0 {
				hi[i] += rng.Float64() * 50
				raised = true
			}
		}
		if !raised {
			hi[rng.Intn(arity)] += rng.Float64() * 50
		}
		if f.Combine(lo) > f.Combine(hi) {
			return false
		}
	}
	return true
}
