package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSum(t *testing.T) {
	if got := (Sum{}).Combine([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	if got := (Sum{}).Combine(nil); got != 0 {
		t.Errorf("empty Sum = %v, want 0", got)
	}
	if (Sum{}).Name() != "sum" {
		t.Error("Sum name")
	}
}

func TestAvg(t *testing.T) {
	if got := (Avg{}).Combine([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Avg = %v, want 2", got)
	}
	if got := (Avg{}).Combine(nil); got != 0 {
		t.Errorf("empty Avg = %v, want 0", got)
	}
	if (Avg{}).Name() != "avg" {
		t.Error("Avg name")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 2}
	if got := (Min{}).Combine(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := (Max{}).Combine(xs); got != 3 {
		t.Errorf("Max = %v, want 3", got)
	}
	if !math.IsInf((Min{}).Combine(nil), 1) {
		t.Error("empty Min should be +Inf")
	}
	if !math.IsInf((Max{}).Combine(nil), -1) {
		t.Error("empty Max should be -Inf")
	}
	if (Min{}).Name() != "min" || (Max{}).Name() != "max" {
		t.Error("names")
	}
}

func TestWeightedSum(t *testing.T) {
	w, err := NewWeightedSum([]float64{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Combine([]float64{1, 100, 3}); got != 5 {
		t.Errorf("WeightedSum = %v, want 5", got)
	}
	if w.Name() == "" {
		t.Error("empty name")
	}
	ws := w.Weights()
	ws[0] = 99
	if w.Combine([]float64{1, 0, 0}) != 2 {
		t.Error("Weights leaked internal slice")
	}
}

func TestWeightedSumRejectsBadWeights(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{1, -0.5},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, ws := range cases {
		if _, err := NewWeightedSum(ws); err == nil {
			t.Errorf("NewWeightedSum(%v) should fail", ws)
		}
	}
}

func TestWeightedSumArityPanics(t *testing.T) {
	w, err := NewWeightedSum([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Combine with wrong arity did not panic")
		}
	}()
	w.Combine([]float64{1})
}

// TestPropertyMonotonicity verifies each provided function satisfies the
// paper's monotonicity requirement on random samples.
func TestPropertyMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w3, err := NewWeightedSum([]float64{0.2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	funcs := []Func{Sum{}, Avg{}, Min{}, Max{}, w3}
	for _, f := range funcs {
		if !CheckMonotone(f, 3, 2000, rng) {
			t.Errorf("%s is not monotone", f.Name())
		}
	}
}

// nonMonotone deliberately violates monotonicity to prove the checker can
// detect violations.
type nonMonotone struct{}

func (nonMonotone) Combine(xs []float64) float64 { return -xs[0] }
func (nonMonotone) Name() string                 { return "negate" }

func TestCheckMonotoneDetectsViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if CheckMonotone(nonMonotone{}, 3, 2000, rng) {
		t.Error("CheckMonotone accepted a non-monotone function")
	}
}

func TestCheckMonotoneDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if CheckMonotone(nil, 3, 10, rng) {
		t.Error("nil func should fail")
	}
	if CheckMonotone(Sum{}, 0, 10, rng) {
		t.Error("zero arity should fail")
	}
}

// TestPropertySumEquivalence cross-checks Sum against an independent fold
// under quick-generated vectors.
func TestPropertySumEquivalence(t *testing.T) {
	prop := func(xs []float64) bool {
		for _, x := range xs {
			// Skip non-finite inputs and magnitudes that overflow the
			// intermediate sum; scores in the model are modest reals.
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true
			}
		}
		var want float64
		for _, x := range xs {
			want += x
		}
		return math.Abs((Sum{}).Combine(xs)-want) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
