// Package score provides the monotone scoring functions of the paper
// (Section 2). The overall score of an item is f(s1, ..., sm) where si is
// the item's local score in list i. All top-k algorithms in this module
// require f to be monotone: f(x1,...,xm) <= f(x'1,...,x'm) whenever
// xi <= x'i for every i.
package score

import (
	"fmt"
	"math"
)

// Func combines the m local scores of an item into its overall score.
//
// Combine must be monotone in every argument and must not retain the
// slice. Name identifies the function in experiment tables.
type Func interface {
	Combine(locals []float64) float64
	Name() string
}

// Sum is the paper's evaluation default: f = s1 + s2 + ... + sm.
type Sum struct{}

// Combine returns the sum of the local scores.
func (Sum) Combine(locals []float64) float64 {
	var t float64
	for _, s := range locals {
		t += s
	}
	return t
}

// Name implements Func.
func (Sum) Name() string { return "sum" }

// Avg is the arithmetic mean; monotone, and order-equivalent to Sum.
type Avg struct{}

// Combine returns the mean of the local scores.
func (Avg) Combine(locals []float64) float64 {
	if len(locals) == 0 {
		return 0
	}
	return Sum{}.Combine(locals) / float64(len(locals))
}

// Name implements Func.
func (Avg) Name() string { return "avg" }

// Min is the fuzzy-conjunction aggregation of Fagin's original setting.
type Min struct{}

// Combine returns the smallest local score.
func (Min) Combine(locals []float64) float64 {
	m := math.Inf(1)
	for _, s := range locals {
		if s < m {
			m = s
		}
	}
	return m
}

// Name implements Func.
func (Min) Name() string { return "min" }

// Max is the fuzzy-disjunction aggregation.
type Max struct{}

// Combine returns the largest local score.
func (Max) Combine(locals []float64) float64 {
	m := math.Inf(-1)
	for _, s := range locals {
		if s > m {
			m = s
		}
	}
	return m
}

// Name implements Func.
func (Max) Name() string { return "max" }

// WeightedSum is f = sum(wi * si) with non-negative weights; non-negative
// weights keep the function monotone.
type WeightedSum struct {
	weights []float64
}

// NewWeightedSum validates the weights (at least one, all finite and
// non-negative) and returns the scoring function.
func NewWeightedSum(weights []float64) (*WeightedSum, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("score: weighted sum needs at least one weight")
	}
	cp := make([]float64, len(weights))
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("score: weight %d is not finite", i)
		}
		if w < 0 {
			return nil, fmt.Errorf("score: weight %d is negative (%v); negative weights break monotonicity", i, w)
		}
		cp[i] = w
	}
	return &WeightedSum{weights: cp}, nil
}

// Combine returns the weighted sum. It panics if the arity does not match
// the number of weights; arity is fixed per query, so a mismatch is a
// programming error.
func (w *WeightedSum) Combine(locals []float64) float64 {
	if len(locals) != len(w.weights) {
		panic(fmt.Sprintf("score: weighted sum got %d scores, want %d", len(locals), len(w.weights)))
	}
	var t float64
	for i, s := range locals {
		t += w.weights[i] * s
	}
	return t
}

// Name implements Func.
func (w *WeightedSum) Name() string { return fmt.Sprintf("wsum(%d)", len(w.weights)) }

// Weights returns a copy of the weight vector.
func (w *WeightedSum) Weights() []float64 {
	cp := make([]float64, len(w.weights))
	copy(cp, w.weights)
	return cp
}
