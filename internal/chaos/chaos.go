// Package chaos is a deterministic, seed-driven fault-injection layer
// for the transport: it wraps the HTTP client's RoundTripper (and, on
// the other side, an owner server's handler) and injects per-exchange
// faults — added latency, dropped connections, stalls past the
// deadline, truncated and bit-flipped frames, spurious 5xx, and full
// replica partitions — drawn from a seeded schedule.
//
// Determinism is the point: the injector draws every decision from one
// seeded PRNG under a mutex, in request order, so a failing run is
// reproducible by its seed (for a serial request sequence the schedule
// is bit-identical; concurrent requests draw in arrival order). The
// chaos acceptance suite in internal/dist runs the full protocol ×
// routing-policy matrix through this layer and holds the transport to
// its contract: every query completes bit-identically or fails with a
// typed error before its deadline — never a hang, never a leak.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Fault is one injected failure mode.
type Fault uint8

const (
	// FaultNone passes the exchange through untouched.
	FaultNone Fault = iota
	// FaultDelay sleeps a jittered DelayDur before the exchange.
	FaultDelay
	// FaultDrop fails the exchange with a connection error before any
	// bytes move.
	FaultDrop
	// FaultStall blocks the exchange until its context dies — the
	// black-holed socket that only a deadline can un-wedge.
	FaultStall
	// FaultTruncate cuts the response body short: a torn frame.
	FaultTruncate
	// FaultCorrupt flips bits in the response body: wire corruption the
	// codec must reject, never crash on.
	FaultCorrupt
	// Fault5xx answers with a synthesized 502 in place of the exchange.
	Fault5xx
	// FaultPartition drops this exchange and everything else to the
	// same host for PartitionDur — a full replica partition.
	FaultPartition
)

// String names the fault for counters and logs.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDelay:
		return "delay"
	case FaultDrop:
		return "drop"
	case FaultStall:
		return "stall"
	case FaultTruncate:
		return "truncate"
	case FaultCorrupt:
		return "corrupt"
	case Fault5xx:
		return "err5xx"
	case FaultPartition:
		return "partition"
	default:
		return fmt.Sprintf("Fault(%d)", uint8(f))
	}
}

// Config declares a chaos schedule: a seed and per-fault injection
// probabilities (each in [0,1], evaluated in the order delay, drop,
// stall, truncate, corrupt, err5xx, partition — at most one fault
// fires per exchange).
type Config struct {
	// Seed drives the schedule; the same seed over the same request
	// sequence reproduces the same faults.
	Seed int64

	// Per-fault probabilities.
	Delay, Drop, Stall, Truncate, Corrupt, Err5xx, Partition float64

	// DelayDur is the mean injected latency of FaultDelay (actual delay
	// is uniform in [DelayDur/2, 3*DelayDur/2)). Default 5ms.
	DelayDur time.Duration
	// PartitionDur is how long a FaultPartition keeps the host dark.
	// Default 250ms.
	PartitionDur time.Duration
	// StallCap bounds a FaultStall for requests whose context carries
	// no deadline, so misuse cannot hang forever. Default 10s.
	StallCap time.Duration

	// DataPlaneOnly restricts injection to /rpc/ exchanges, leaving the
	// control plane (opens, syncs, stats, health probes) clean.
	DataPlaneOnly bool
}

// withDefaults fills the zero durations.
func (c Config) withDefaults() Config {
	if c.DelayDur <= 0 {
		c.DelayDur = 5 * time.Millisecond
	}
	if c.PartitionDur <= 0 {
		c.PartitionDur = 250 * time.Millisecond
	}
	if c.StallCap <= 0 {
		c.StallCap = 10 * time.Second
	}
	return c
}

// Injector draws per-exchange fault decisions from a seeded schedule
// and tracks partition windows and per-fault tallies. Safe for
// concurrent use; decisions are drawn in request order under one
// mutex.
type Injector struct {
	cfg Config

	mu         sync.Mutex
	rng        *rand.Rand
	partitions map[string]time.Time
	counts     map[Fault]int64
	draws      int64
}

// New builds an injector for the given schedule.
func New(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		partitions: make(map[string]time.Time),
		counts:     make(map[Fault]int64),
	}
}

// decision is one drawn fault plus its parameters.
type decision struct {
	fault Fault
	// dur is the injected latency of FaultDelay.
	dur time.Duration
	// aux seeds deterministic corruption offsets for FaultCorrupt /
	// FaultTruncate.
	aux int64
}

// decide draws the fault for one exchange against host. An exchange to
// a host inside a partition window is dropped without consuming a
// draw, so partition behaviour does not perturb the schedule of the
// surviving hosts.
func (in *Injector) decide(host, path string) decision {
	if in.cfg.DataPlaneOnly && !strings.HasPrefix(path, "/rpc/") {
		return decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	now := time.Now()
	if until, ok := in.partitions[host]; ok {
		if now.Before(until) {
			in.counts[FaultPartition]++
			return decision{fault: FaultDrop}
		}
		delete(in.partitions, host)
	}
	in.draws++
	p := in.rng.Float64()
	aux := in.rng.Int63()
	d := decision{aux: aux}
	switch {
	case p < in.cfg.Delay:
		d.fault = FaultDelay
		d.dur = in.cfg.DelayDur/2 + time.Duration(float64(in.cfg.DelayDur)*in.rng.Float64())
	case p < in.cfg.Delay+in.cfg.Drop:
		d.fault = FaultDrop
	case p < in.cfg.Delay+in.cfg.Drop+in.cfg.Stall:
		d.fault = FaultStall
	case p < in.cfg.Delay+in.cfg.Drop+in.cfg.Stall+in.cfg.Truncate:
		d.fault = FaultTruncate
	case p < in.cfg.Delay+in.cfg.Drop+in.cfg.Stall+in.cfg.Truncate+in.cfg.Corrupt:
		d.fault = FaultCorrupt
	case p < in.cfg.Delay+in.cfg.Drop+in.cfg.Stall+in.cfg.Truncate+in.cfg.Corrupt+in.cfg.Err5xx:
		d.fault = Fault5xx
	case p < in.cfg.Delay+in.cfg.Drop+in.cfg.Stall+in.cfg.Truncate+in.cfg.Corrupt+in.cfg.Err5xx+in.cfg.Partition:
		d.fault = FaultPartition
		in.partitions[host] = now.Add(in.cfg.PartitionDur)
	}
	if d.fault != FaultNone {
		in.counts[d.fault]++
	}
	return d
}

// Counts snapshots how many times each fault has fired — the honest
// turbulence report a chaos run prints next to its recovery counters.
func (in *Injector) Counts() map[Fault]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Fault]int64, len(in.counts))
	for f, n := range in.counts {
		out[f] = n
	}
	return out
}

// Draws reports how many schedule decisions have been consumed.
func (in *Injector) Draws() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.draws
}

// Summary renders the fault tallies compactly ("drop=3 err5xx=1"), in
// stable order; empty when nothing fired.
func (in *Injector) Summary() string {
	counts := in.Counts()
	keys := make([]Fault, 0, len(counts))
	for f := range counts {
		keys = append(keys, f)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	for _, f := range keys {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", f, counts[f])
	}
	return b.String()
}

// corrupt flips three aux-determined bits of buf in place (no-op on an
// empty buffer). Deterministic given the schedule.
func corrupt(buf []byte, aux int64) {
	if len(buf) == 0 {
		return
	}
	for i := 0; i < 3; i++ {
		bit := uint64(aux) >> (uint(i) * 21)
		pos := int(bit % uint64(len(buf)*8))
		buf[pos/8] ^= 1 << (pos % 8)
	}
}

// truncateAt returns the length to cut a body of n bytes down to:
// roughly half, always at least one byte shorter (0 stays 0).
func truncateAt(n int, aux int64) int {
	if n <= 1 {
		return 0
	}
	return int(uint64(aux) % uint64(n/2+1))
}

// ParseSpec parses a chaos schedule from its CLI shape: comma-separated
// key=value pairs. Probabilities: delay, drop, stall, truncate,
// corrupt, err5xx, partition (each in [0,1]), plus all=P as shorthand
// for setting every one of them. Other keys: seed=N,
// delay-dur=DURATION, partition-dur=DURATION, stall-cap=DURATION,
// data-plane-only=BOOL. Example:
//
//	seed=42,all=0.02,delay=0.1,partition-dur=300ms,data-plane-only=true
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: bad spec entry %q (want key=value)", kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: bad seed %q: %v", v, err)
			}
			cfg.Seed = n
		case "delay-dur":
			d, err := time.ParseDuration(v)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: bad delay-dur %q: %v", v, err)
			}
			cfg.DelayDur = d
		case "partition-dur":
			d, err := time.ParseDuration(v)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: bad partition-dur %q: %v", v, err)
			}
			cfg.PartitionDur = d
		case "stall-cap":
			d, err := time.ParseDuration(v)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: bad stall-cap %q: %v", v, err)
			}
			cfg.StallCap = d
		case "data-plane-only":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: bad data-plane-only %q: %v", v, err)
			}
			cfg.DataPlaneOnly = b
		case "all", "delay", "drop", "stall", "truncate", "corrupt", "err5xx", "partition":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return Config{}, fmt.Errorf("chaos: bad probability %s=%q (want [0,1])", k, v)
			}
			switch k {
			case "all":
				cfg.Delay, cfg.Drop, cfg.Stall, cfg.Truncate, cfg.Corrupt, cfg.Err5xx, cfg.Partition = p, p, p, p, p, p, p
			case "delay":
				cfg.Delay = p
			case "drop":
				cfg.Drop = p
			case "stall":
				cfg.Stall = p
			case "truncate":
				cfg.Truncate = p
			case "corrupt":
				cfg.Corrupt = p
			case "err5xx":
				cfg.Err5xx = p
			case "partition":
				cfg.Partition = p
			}
		default:
			return Config{}, fmt.Errorf("chaos: unknown spec key %q", k)
		}
	}
	return cfg, nil
}
