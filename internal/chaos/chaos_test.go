package chaos

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestScheduleDeterminism pins the core chaos contract: two injectors
// with the same seed and config draw the identical fault sequence for
// the identical request sequence.
func TestScheduleDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Delay: 0.1, Drop: 0.1, Stall: 0.05, Truncate: 0.05, Corrupt: 0.05, Err5xx: 0.1, Partition: 0.02}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		da := a.decide("host-a:1", "/rpc/x")
		db := b.decide("host-a:1", "/rpc/x")
		if da.fault != db.fault || da.aux != db.aux || da.dur != db.dur {
			t.Fatalf("draw %d diverged: %v/%v vs %v/%v", i, da.fault, da.aux, db.fault, db.aux)
		}
	}
	if a.Draws() != b.Draws() {
		t.Fatalf("draw counts diverged: %d vs %d", a.Draws(), b.Draws())
	}
	for f, n := range a.Counts() {
		if b.Counts()[f] != n {
			t.Fatalf("count %v diverged: %d vs %d", f, n, b.Counts()[f])
		}
	}
}

// TestSeedChangesSchedule makes sure the seed actually matters.
func TestSeedChangesSchedule(t *testing.T) {
	cfg := Config{Delay: 0.1, Drop: 0.1, Stall: 0.1, Truncate: 0.1, Corrupt: 0.1, Err5xx: 0.1, Partition: 0.1}
	a := New(Config{Seed: 1, Delay: cfg.Delay, Drop: cfg.Drop, Stall: cfg.Stall, Truncate: cfg.Truncate, Corrupt: cfg.Corrupt, Err5xx: cfg.Err5xx, Partition: cfg.Partition})
	b := New(Config{Seed: 2, Delay: cfg.Delay, Drop: cfg.Drop, Stall: cfg.Stall, Truncate: cfg.Truncate, Corrupt: cfg.Corrupt, Err5xx: cfg.Err5xx, Partition: cfg.Partition})
	same := true
	for i := 0; i < 200; i++ {
		if a.decide("h", "/rpc/x").fault != b.decide("h", "/rpc/x").fault {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds drew identical 200-fault schedules")
	}
}

// TestPartitionWindow verifies a partition darkens its host for the
// window without consuming schedule draws, and that other hosts keep
// drawing normally.
func TestPartitionWindow(t *testing.T) {
	in := New(Config{Seed: 7, Partition: 1.0, PartitionDur: 50 * time.Millisecond})
	if d := in.decide("h1", "/rpc/x"); d.fault != FaultPartition {
		t.Fatalf("first draw: got %v, want partition", d.fault)
	}
	draws := in.Draws()
	// Inside the window every exchange to h1 drops without a draw.
	for i := 0; i < 5; i++ {
		if d := in.decide("h1", "/rpc/x"); d.fault != FaultDrop {
			t.Fatalf("in-window draw: got %v, want drop", d.fault)
		}
	}
	if in.Draws() != draws {
		t.Fatalf("partitioned exchanges consumed %d draws", in.Draws()-draws)
	}
	// After the window the host draws again (probability 1 → partition).
	time.Sleep(60 * time.Millisecond)
	if d := in.decide("h1", "/rpc/x"); d.fault != FaultPartition {
		t.Fatalf("post-window draw: got %v, want fresh partition", d.fault)
	}
}

// TestDataPlaneOnly pins that control-plane paths are passed through
// without consuming draws when DataPlaneOnly is set.
func TestDataPlaneOnly(t *testing.T) {
	in := New(Config{Seed: 3, Drop: 1.0, DataPlaneOnly: true})
	if d := in.decide("h", "/open"); d.fault != FaultNone {
		t.Fatalf("control-plane exchange drew %v", d.fault)
	}
	if in.Draws() != 0 {
		t.Fatalf("control-plane exchange consumed a draw")
	}
	if d := in.decide("h", "/rpc/abc"); d.fault != FaultDrop {
		t.Fatalf("data-plane exchange: got %v, want drop", d.fault)
	}
}

// TestCorruptMutates checks bit-flips always change a non-empty buffer
// and truncation always shortens one.
func TestCorruptMutates(t *testing.T) {
	orig := bytes.Repeat([]byte{0xAB}, 64)
	for aux := int64(1); aux < 100; aux++ {
		buf := append([]byte(nil), orig...)
		corrupt(buf, aux)
		if bytes.Equal(buf, orig) {
			t.Fatalf("aux=%d: corrupt left buffer unchanged", aux)
		}
		if n := truncateAt(len(orig), aux); n >= len(orig) {
			t.Fatalf("aux=%d: truncateAt(%d) = %d, not shorter", aux, len(orig), n)
		}
	}
	corrupt(nil, 5) // must not panic
	if truncateAt(0, 5) != 0 || truncateAt(1, 5) != 0 {
		t.Fatal("truncateAt on tiny bodies should hit 0")
	}
}

// TestParseSpec covers the CLI surface: good specs round-trip into
// configs, bad ones fail loudly.
func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42,all=0.02,delay=0.1,partition-dur=300ms,stall-cap=2s,data-plane-only=true")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if cfg.Seed != 42 || cfg.Delay != 0.1 || cfg.Drop != 0.02 || cfg.Partition != 0.02 {
		t.Fatalf("spec parsed wrong: %+v", cfg)
	}
	if cfg.PartitionDur != 300*time.Millisecond || cfg.StallCap != 2*time.Second || !cfg.DataPlaneOnly {
		t.Fatalf("durations parsed wrong: %+v", cfg)
	}
	for _, bad := range []string{"p=0.5", "drop=1.5", "drop=x", "seed=abc", "delay-dur=fast", "justakey"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
	if cfg, err := ParseSpec(""); err != nil || cfg != (Config{}) {
		t.Fatalf("empty spec: cfg=%+v err=%v", cfg, err)
	}
}

// roundTrip pushes one request through a chaos RoundTripper against a
// live backend and returns what the client saw.
func roundTrip(t *testing.T, rt *RoundTripper, url string, timeout time.Duration) (*http.Response, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, strings.NewReader("ping"))
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

// TestRoundTripperFaults drives each client-side fault against a real
// httptest backend.
func TestRoundTripperFaults(t *testing.T) {
	payload := []byte("hello, this is a perfectly healthy response body")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer srv.Close()

	t.Run("drop", func(t *testing.T) {
		rt := &RoundTripper{In: New(Config{Seed: 1, Drop: 1.0})}
		if _, err := roundTrip(t, rt, srv.URL, time.Second); err == nil {
			t.Fatal("dropped exchange returned no error")
		}
	})
	t.Run("stall-honors-deadline", func(t *testing.T) {
		rt := &RoundTripper{In: New(Config{Seed: 1, Stall: 1.0})}
		start := time.Now()
		_, err := roundTrip(t, rt, srv.URL, 50*time.Millisecond)
		if err == nil {
			t.Fatal("stalled exchange returned no error")
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("stall outlived its deadline: %v", elapsed)
		}
	})
	t.Run("err5xx", func(t *testing.T) {
		rt := &RoundTripper{In: New(Config{Seed: 1, Err5xx: 1.0})}
		resp, err := roundTrip(t, rt, srv.URL, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("got %d, want 502", resp.StatusCode)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		rt := &RoundTripper{In: New(Config{Seed: 1, Truncate: 1.0})}
		resp, err := roundTrip(t, rt, srv.URL, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		got, _ := io.ReadAll(resp.Body)
		if len(got) >= len(payload) {
			t.Fatalf("truncated body has %d bytes, want < %d", len(got), len(payload))
		}
		if int64(len(got)) != resp.ContentLength {
			t.Fatalf("Content-Length %d != body %d", resp.ContentLength, len(got))
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		rt := &RoundTripper{In: New(Config{Seed: 1, Corrupt: 1.0})}
		resp, err := roundTrip(t, rt, srv.URL, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		got, _ := io.ReadAll(resp.Body)
		if bytes.Equal(got, payload) {
			t.Fatal("corrupted body arrived intact")
		}
		if len(got) != len(payload) {
			t.Fatalf("corruption changed length: %d vs %d", len(got), len(payload))
		}
	})
	t.Run("clean", func(t *testing.T) {
		rt := &RoundTripper{In: New(Config{Seed: 1})}
		resp, err := roundTrip(t, rt, srv.URL, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		got, _ := io.ReadAll(resp.Body)
		if !bytes.Equal(got, payload) {
			t.Fatal("zero-probability schedule mutated the exchange")
		}
	})
}

// TestHandlerFaults drives the server-side middleware through a live
// httptest server, fault by fault.
func TestHandlerFaults(t *testing.T) {
	payload := []byte("owner response frame, long enough to tear")
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	})
	get := func(t *testing.T, url string, timeout time.Duration) (*http.Response, error) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		return http.DefaultClient.Do(req)
	}

	t.Run("drop-aborts-connection", func(t *testing.T) {
		srv := httptest.NewServer(Handler(inner, New(Config{Seed: 1, Drop: 1.0})))
		defer srv.Close()
		if _, err := get(t, srv.URL, time.Second); err == nil {
			t.Fatal("aborted exchange returned no error")
		}
	})
	t.Run("err5xx", func(t *testing.T) {
		srv := httptest.NewServer(Handler(inner, New(Config{Seed: 1, Err5xx: 1.0})))
		defer srv.Close()
		resp, err := get(t, srv.URL, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("got %d, want 502", resp.StatusCode)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		srv := httptest.NewServer(Handler(inner, New(Config{Seed: 1, Truncate: 1.0})))
		defer srv.Close()
		resp, err := get(t, srv.URL, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		got, _ := io.ReadAll(resp.Body)
		if len(got) >= len(payload) {
			t.Fatalf("truncated frame has %d bytes, want < %d", len(got), len(payload))
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		srv := httptest.NewServer(Handler(inner, New(Config{Seed: 1, Corrupt: 1.0})))
		defer srv.Close()
		resp, err := get(t, srv.URL, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		got, _ := io.ReadAll(resp.Body)
		if bytes.Equal(got, payload) {
			t.Fatal("corrupted frame arrived intact")
		}
	})
	t.Run("stall-honors-client-deadline", func(t *testing.T) {
		srv := httptest.NewServer(Handler(inner, New(Config{Seed: 1, Stall: 1.0, StallCap: 5 * time.Second})))
		defer srv.Close()
		start := time.Now()
		if _, err := get(t, srv.URL, 50*time.Millisecond); err == nil {
			t.Fatal("stalled exchange returned no error")
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("stall outlived the client deadline: %v", elapsed)
		}
	})
	t.Run("clean", func(t *testing.T) {
		srv := httptest.NewServer(Handler(inner, New(Config{Seed: 1})))
		defer srv.Close()
		resp, err := get(t, srv.URL, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		got, _ := io.ReadAll(resp.Body)
		if !bytes.Equal(got, payload) {
			t.Fatal("zero-probability schedule mutated the exchange")
		}
	})
}

// TestSummary pins the stable rendering of the tally line.
func TestSummary(t *testing.T) {
	in := New(Config{Seed: 1, Drop: 1.0})
	if s := in.Summary(); s != "" {
		t.Fatalf("fresh injector summary = %q", s)
	}
	in.decide("h", "/rpc/x")
	in.decide("h", "/rpc/x")
	if s := in.Summary(); s != "drop=2" {
		t.Fatalf("summary = %q, want drop=2", s)
	}
}
