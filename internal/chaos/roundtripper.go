package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// RoundTripper injects the schedule's faults on the client side of the
// wire: it wraps the http.Transport the topk HTTP client dials with, so
// every exchange earns its way through drops, stalls, torn frames and
// flipped bits before the protocol sees a byte.
type RoundTripper struct {
	// Base performs the real exchange; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// In draws the fault schedule.
	In *Injector
}

// errDropped is the injected connection failure. It surfaces through
// http.Client as a *url.Error, exactly like a real refused connection.
var errDropped = fmt.Errorf("chaos: connection dropped (injected)")

// RoundTrip applies the drawn fault to one exchange.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	base := rt.Base
	if base == nil {
		base = http.DefaultTransport
	}
	d := rt.In.decide(req.URL.Host, req.URL.Path)
	switch d.fault {
	case FaultNone:
		return base.RoundTrip(req)
	case FaultDelay:
		t := time.NewTimer(d.dur)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			drainBody(req)
			return nil, req.Context().Err()
		}
		return base.RoundTrip(req)
	case FaultDrop, FaultPartition:
		drainBody(req)
		return nil, errDropped
	case FaultStall:
		// The black hole: nothing moves until the caller's deadline
		// (or the safety cap) kills the exchange.
		cap := time.NewTimer(rt.In.cfg.StallCap)
		defer cap.Stop()
		select {
		case <-req.Context().Done():
			drainBody(req)
			return nil, req.Context().Err()
		case <-cap.C:
			drainBody(req)
			return nil, errDropped
		}
	case Fault5xx:
		drainBody(req)
		body := []byte(`{"error":"chaos: injected upstream failure"}`)
		return &http.Response{
			Status:        "502 Bad Gateway",
			StatusCode:    http.StatusBadGateway,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case FaultTruncate, FaultCorrupt:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return mangleResponse(resp, d)
	default:
		return base.RoundTrip(req)
	}
}

// drainBody closes a short-circuited request's body, honoring the
// RoundTripper contract that the body is always consumed.
func drainBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// mangleResponse rewrites a real response's body as a torn or
// bit-flipped frame, keeping Content-Length consistent so the damage
// reaches the codec instead of dying in the HTTP layer.
func mangleResponse(resp *http.Response, d decision) (*http.Response, error) {
	buf, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if d.fault == FaultTruncate {
		buf = buf[:truncateAt(len(buf), d.aux)]
	} else {
		corrupt(buf, d.aux)
	}
	resp.Body = io.NopCloser(bytes.NewReader(buf))
	resp.ContentLength = int64(len(buf))
	resp.Header.Set("Content-Length", strconv.Itoa(len(buf)))
	return resp, nil
}
