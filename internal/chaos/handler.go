package chaos

import (
	"net/http"
	"time"
)

// Handler injects the schedule's faults on the server side of the wire:
// it wraps an owner's HTTP handler so exchanges are delayed, aborted,
// stalled, answered 502, or have their response frames torn and
// bit-flipped before they leave the process. Faults are drawn from the
// same kind of seeded schedule as the client RoundTripper; partition
// windows key on the request's Host, darkening the whole replica.
func Handler(inner http.Handler, in *Injector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := in.decide(r.Host, r.URL.Path)
		switch d.fault {
		case FaultNone:
			inner.ServeHTTP(w, r)
		case FaultDelay:
			t := time.NewTimer(d.dur)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				panic(http.ErrAbortHandler)
			}
			inner.ServeHTTP(w, r)
		case FaultDrop, FaultPartition:
			// Abort the connection mid-exchange; the client sees EOF,
			// not a status.
			panic(http.ErrAbortHandler)
		case FaultStall:
			cap := time.NewTimer(in.cfg.StallCap)
			defer cap.Stop()
			select {
			case <-r.Context().Done():
			case <-cap.C:
			}
			panic(http.ErrAbortHandler)
		case Fault5xx:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadGateway)
			w.Write([]byte(`{"error":"chaos: injected upstream failure"}`))
		case FaultTruncate, FaultCorrupt:
			rec := &recorder{header: make(http.Header), status: http.StatusOK}
			inner.ServeHTTP(rec, r)
			buf := rec.buf
			if d.fault == FaultTruncate {
				buf = buf[:truncateAt(len(buf), d.aux)]
			} else {
				corrupt(buf, d.aux)
			}
			h := w.Header()
			for k, vs := range rec.header {
				h[k] = vs
			}
			h.Del("Content-Length")
			w.WriteHeader(rec.status)
			w.Write(buf)
		default:
			inner.ServeHTTP(w, r)
		}
	})
}

// recorder buffers a response so its frame can be mangled before it is
// written to the real connection.
type recorder struct {
	header http.Header
	status int
	buf    []byte
	wrote  bool
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(status int) {
	if !r.wrote {
		r.status = status
		r.wrote = true
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	r.wrote = true
	r.buf = append(r.buf, p...)
	return len(p), nil
}
