package topk_test

import (
	"fmt"
	"log"

	"topk"
)

// Progressive enumeration: retrieve answers rank by rank without fixing
// k upfront. Each answer is certified against everything unseen before
// it is returned.
func ExampleDatabase_Progressive() {
	db, err := topk.FromColumns([][]float64{
		{30, 11, 26, 28, 17},
		{21, 28, 14, 13, 24},
		{14, 24, 30, 25, 29},
	})
	if err != nil {
		log.Fatal(err)
	}
	it, err := db.Progressive(topk.ProgressiveQuery{})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		item, ok := it.Next()
		if !ok {
			break
		}
		fmt.Printf("rank %d: item %d score %.0f\n", i+1, item.Item, item.Score)
	}
	// Output:
	// rank 1: item 2 score 70
	// rank 2: item 4 score 70
	// rank 3: item 3 score 66
}

// NRA answers with sorted accesses only: the returned item set is a
// correct top-k set, but the scores may be lower bounds (Inexact).
func ExampleQuery_nra() {
	db, err := topk.FromColumns([][]float64{
		{30, 11, 26, 28, 17},
		{21, 28, 14, 13, 24},
		{14, 24, 30, 25, 29},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.TopK(topk.Query{K: 2, Algorithm: topk.NRA})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("random accesses:", res.Stats.RandomAccesses)
	for _, it := range res.Items {
		fmt.Printf("item %d score >= %.0f\n", it.Item, it.Score)
	}
	// Output:
	// random accesses: 0
	// item 2 score >= 70
	// item 4 score >= 70
}

// A continuous top-k monitor over a sliding window, reporting how the
// ranking changes as observations arrive and expire.
func ExampleNewMonitor() {
	mon, err := topk.NewMonitor(topk.MonitorConfig{Sources: 2, K: 2, WindowBuckets: 2})
	if err != nil {
		log.Fatal(err)
	}
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	check(mon.Observe(0, "/home", 40))
	check(mon.Observe(1, "/home", 12))
	check(mon.Observe(0, "/search", 30))
	check(mon.Observe(1, "/search", 25))
	snap, err := mon.TopK()
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range snap.Items {
		fmt.Printf("%s %.0f\n", e.Key, e.Score)
	}

	// One bucket later /docs spikes; two buckets later the old traffic
	// has expired entirely.
	mon.Advance()
	check(mon.Observe(0, "/docs", 99))
	mon.Advance()
	snap, err = mon.TopK()
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range snap.Changes {
		if c.Kind == topk.ChangeEntered {
			fmt.Printf("%s entered at rank %d\n", c.Key, c.Rank)
		}
	}
	// Output:
	// /search 55
	// /home 52
	// /docs entered at rank 1
}

// ParseAlgorithm resolves user-supplied algorithm names, as the CLI
// tools and the HTTP API do.
func ExampleParseAlgorithm() {
	for _, name := range []string{"bpa2", "TA", "nra"} {
		alg, err := topk.ParseAlgorithm(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(alg)
	}
	// Output:
	// BPA2
	// TA
	// NRA
}
