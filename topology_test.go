package topk

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"topk/internal/dist"
	"topk/internal/transport"
)

// TestParseTopology covers the CLI replica syntax: lists comma-
// separated, replicas |-separated.
func TestParseTopology(t *testing.T) {
	got, err := ParseTopology("host:a|host:b, host:c")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"host:a", "host:b"}, {"host:c"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseTopology = %v, want %v", got, want)
	}
	// The flat syntax stays valid: one replica per list.
	got, err = ParseTopology("host:a,host:c")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 1 || got[0][0] != "host:a" {
		t.Errorf("flat ParseTopology = %v", got)
	}
	for _, bad := range []string{"", "  ", "a||b", "a,", "|a"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) accepted", bad)
		}
	}
}

// TestParseRoutingPolicyPublic: the public policy names round-trip.
func TestParseRoutingPolicyPublic(t *testing.T) {
	for _, p := range RoutingPolicies() {
		got, err := ParseRoutingPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseRoutingPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseRoutingPolicy("zzz"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// startReplicatedCluster serves list 0 of db from two replicas (list 1+
// from one) and dials the topology under the given policy.
func startReplicatedCluster(t *testing.T, db *Database, policy RoutingPolicy) *Cluster {
	t.Helper()
	topo := make([][]string, db.M())
	for i := 0; i < db.M(); i++ {
		reps := 1
		if i == 0 {
			reps = 2
		}
		for r := 0; r < reps; r++ {
			srv, err := transport.NewServer(db.db, i)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			topo[i] = append(topo[i], ts.URL)
		}
	}
	c, err := DialClusterConfig(context.Background(), ClusterConfig{Topology: topo, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestDialClusterConfigReplicated: the declarative dial against a
// mixed-width topology answers every protocol bit-identically to the
// in-process run, and exposes the replica health snapshot.
func TestDialClusterConfigReplicated(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 250, M: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := startReplicatedCluster(t, db, RouteRoundRobin)
	for _, p := range Protocols() {
		want, err := db.ExecDistributed(context.Background(), Query{K: 7}, p)
		if err != nil {
			t.Fatalf("%v in-process: %v", p, err)
		}
		got, err := c.Exec(context.Background(), Query{K: 7}, p)
		if err != nil {
			t.Fatalf("%v replicated cluster: %v", p, err)
		}
		for i := range want.Items {
			if got.Items[i].Item != want.Items[i].Item || got.Items[i].Score != want.Items[i].Score {
				t.Errorf("%v answer %d: %+v vs %+v", p, i, got.Items[i], want.Items[i])
			}
		}
		if got.Stats.Messages != want.Stats.Messages || got.Stats.Payload != want.Stats.Payload ||
			got.Stats.Rounds != want.Stats.Rounds || got.Stats.TotalAccesses != want.Stats.TotalAccesses ||
			!reflect.DeepEqual(got.Stats.PerOwner, want.Stats.PerOwner) {
			t.Errorf("%v stats diverge: %+v vs %+v", p, got.Stats, want.Stats)
		}
	}
	h := c.Health()
	if len(h) != 4 { // 2 replicas of list 0 + 1 each of lists 1, 2
		t.Fatalf("Health reported %d replicas, want 4", len(h))
	}
	for _, rh := range h {
		if !rh.Healthy {
			t.Errorf("replica %d/%d unhealthy after clean runs", rh.List, rh.Replica)
		}
		if rh.Latency <= 0 {
			t.Errorf("replica %d/%d has no EWMA latency", rh.List, rh.Replica)
		}
	}
}

// TestDialClusterConfigValidation: malformed configs fail the dial.
func TestDialClusterConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := DialClusterConfig(ctx, ClusterConfig{}); err == nil {
		t.Error("empty topology accepted")
	}
	if _, err := DialClusterConfig(ctx, ClusterConfig{Topology: [][]string{{"h"}}, Wire: "zzz"}); err == nil {
		t.Error("bad wire accepted")
	}
	if _, err := DialClusterConfig(ctx, ClusterConfig{Topology: [][]string{{"127.0.0.1:1"}}}); err == nil {
		t.Error("unreachable single-replica list accepted")
	}
}

// TestSetWireLockedAfterExec: flipping the wire codec under live
// sessions is a data race on the encoding path, so SetWire is guarded —
// after the first Exec it fails with the typed ErrClusterStarted, while
// ClusterConfig.Wire (and pre-Exec SetWire) remain the supported paths.
func TestSetWireLockedAfterExec(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 60, M: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, db)
	if err := c.SetWire("json"); err != nil {
		t.Fatalf("SetWire before Exec: %v", err)
	}
	if err := c.SetWire("zzz"); err == nil {
		t.Error("unknown wire accepted")
	}
	if _, err := c.Exec(context.Background(), Query{K: 3}, DistBPA2); err != nil {
		t.Fatal(err)
	}
	err = c.SetWire("binary")
	if !errors.Is(err, ErrClusterStarted) {
		t.Errorf("SetWire after Exec = %v, want ErrClusterStarted", err)
	}
	// The declarative path makes the guard moot: wire set at dial time.
	if _, err := DialClusterConfig(context.Background(), ClusterConfig{
		Topology: [][]string{{"127.0.0.1:1"}}, Wire: "json",
	}); err == nil {
		t.Error("unreachable owner accepted") // wire parsed before dial — both paths must error
	}
}

// TestDistStatsPerOwnerCopied: the adapter must hand out its own
// PerOwner slice, not alias the runner's live accounting.
func TestDistStatsPerOwnerCopied(t *testing.T) {
	res := &dist.Result{Net: dist.Net{Messages: 4, PerOwner: []int64{2, 2}}}
	st := distStatsOf(res)
	st.PerOwner[0] = 99
	if res.Net.PerOwner[0] != 2 {
		t.Error("DistStats.PerOwner aliases the internal accounting slice")
	}
}

// TestProtocolRoundTrip: every Protocol's String parses back to itself,
// in the exact form, with the dist- prefix added or stripped, and under
// whitespace/case noise.
func TestProtocolRoundTrip(t *testing.T) {
	for _, p := range Protocols() {
		name := p.String()
		variants := []string{
			name,
			strings.ToUpper(name),
			"  " + name + "\t",
			strings.TrimPrefix(name, "dist-"), // bare form
			"dist-" + strings.TrimPrefix(name, "dist-"), // prefixed form (also for tput)
			"DIST-" + strings.ToUpper(strings.TrimPrefix(name, "dist-")),
		}
		for _, v := range variants {
			got, err := ParseProtocol(v)
			if err != nil {
				t.Errorf("ParseProtocol(%q): %v", v, err)
				continue
			}
			if got != p {
				t.Errorf("ParseProtocol(%q) = %v, want %v", v, got, p)
			}
			if got.String() != name {
				t.Errorf("round-trip drift: %q -> %v -> %q", v, got, got.String())
			}
		}
	}
	for _, bad := range []string{"", "dist-", "zzz", "dist-zzz"} {
		if _, err := ParseProtocol(bad); err == nil {
			t.Errorf("ParseProtocol(%q) accepted", bad)
		}
	}
}

// TestClusterOwnerFailedErrorPublic: the transport's typed mid-query
// failure surfaces through the public API as *topk.OwnerFailedError.
func TestClusterOwnerFailedErrorPublic(t *testing.T) {
	inner := &transport.OwnerFailedError{List: 1, Replica: 0, URL: "http://x", Err: errors.New("boom")}
	err := liftOwnerFailure(distWrap(inner))
	var ofe *OwnerFailedError
	if !errors.As(err, &ofe) {
		t.Fatalf("liftOwnerFailure returned %T", err)
	}
	if ofe.List != 1 || ofe.Replica != 0 || ofe.URL != "http://x" {
		t.Errorf("lifted error = %+v", ofe)
	}
	if !strings.Contains(ofe.Error(), "owner 1") || !strings.Contains(ofe.Error(), "replica 0") {
		t.Errorf("error text = %q", ofe.Error())
	}
	// Non-replica errors pass through untouched.
	plain := errors.New("plain")
	if got := liftOwnerFailure(plain); got != plain {
		t.Errorf("plain error rewritten to %v", got)
	}
}

// distWrap simulates the dist runner's wrapping between the transport
// failure and the public boundary.
func distWrap(err error) error {
	return &wrapped{err}
}

type wrapped struct{ err error }

func (w *wrapped) Error() string { return "dist: probe exchange with owner 1: " + w.err.Error() }
func (w *wrapped) Unwrap() error { return w.err }
