package topk

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestIntegrationGenerateSaveLoadQuery exercises the full public surface
// end to end: generate a workload, persist it twice (binary and CSV),
// reload both, and verify that every algorithm, every distributed
// protocol, the DHT overlay, and the explain trace agree on the answers.
func TestIntegrationGenerateSaveLoadQuery(t *testing.T) {
	orig, err := Generate(GenSpec{Kind: GenCorrelated, N: 800, M: 5, Alpha: 0.05, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	binPath := filepath.Join(dir, "db.topk")
	if err := orig.SaveFile(binPath); err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := orig.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}

	fromBin, err := LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(strings.NewReader(csvBuf.String()))
	if err != nil {
		t.Fatal(err)
	}

	const k = 12
	want, err := orig.Oracle(k, nil)
	if err != nil {
		t.Fatal(err)
	}

	for name, db := range map[string]*Database{"original": orig, "binary": fromBin, "csv": fromCSV} {
		if db.N() != orig.N() || db.M() != orig.M() {
			t.Fatalf("%s: dimensions changed", name)
		}
		// Centralized: every algorithm.
		for _, alg := range Algorithms() {
			res, err := db.TopK(Query{K: k, Algorithm: alg})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, alg, err)
			}
			for i := range want {
				if res.Items[i].Score != want[i].Score {
					t.Fatalf("%s/%v: answer %d score %v, want %v",
						name, alg, i, res.Items[i].Score, want[i].Score)
				}
			}
		}
		// Distributed: every protocol.
		for _, p := range Protocols() {
			res, err := db.RunDistributed(Query{K: k}, p)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, p, err)
			}
			for i := range want {
				if res.Items[i].Score != want[i].Score {
					t.Fatalf("%s/%v: answer %d wrong", name, p, i)
				}
			}
		}
		// Overlay.
		dres, err := db.RunDHT(Query{K: k}, DistBPA2, 256, 7, false)
		if err != nil {
			t.Fatalf("%s/dht: %v", name, err)
		}
		if dres.Items[0].Score != want[0].Score {
			t.Fatalf("%s/dht: top answer wrong", name)
		}
	}

	// Explain produces a trace whose final round is the stop round.
	var traceBuf bytes.Buffer
	res, err := orig.Explain(Query{K: k, Algorithm: BPA}, &traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(traceBuf.String(), "STOP") {
		t.Error("trace missing STOP marker")
	}
	if res.Stats.StopPosition < 1 {
		t.Errorf("stop position = %d", res.Stats.StopPosition)
	}
}

// TestIntegrationAccessOrdering verifies the paper's headline cost
// ordering end to end on a larger independent workload through the
// public API: accesses(BPA2) < accesses(TA), cost(BPA) <= cost(TA),
// and all approximate runs cost no more than exact ones.
func TestIntegrationAccessOrdering(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 5_000, M: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	const k = 20
	ta, err := db.TopK(Query{K: k, Algorithm: TA})
	if err != nil {
		t.Fatal(err)
	}
	bpa, err := db.TopK(Query{K: k, Algorithm: BPA})
	if err != nil {
		t.Fatal(err)
	}
	bpa2, err := db.TopK(Query{K: k, Algorithm: BPA2})
	if err != nil {
		t.Fatal(err)
	}
	if bpa.Stats.Cost > ta.Stats.Cost {
		t.Errorf("BPA cost %v above TA %v (Theorem 2)", bpa.Stats.Cost, ta.Stats.Cost)
	}
	if bpa2.Stats.TotalAccesses() >= ta.Stats.TotalAccesses() {
		t.Errorf("BPA2 accesses %d not below TA %d",
			bpa2.Stats.TotalAccesses(), ta.Stats.TotalAccesses())
	}
	approx, err := db.TopK(Query{K: k, Algorithm: BPA2, Approximation: 2})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Stats.TotalAccesses() > bpa2.Stats.TotalAccesses() {
		t.Errorf("θ=2 run did more accesses than exact")
	}
}
