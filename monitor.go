package topk

import (
	"fmt"

	"topk/internal/bestpos"
	"topk/internal/core"
	"topk/internal/stream"
)

// MonitorConfig sizes a continuous top-k monitor.
type MonitorConfig struct {
	// Sources is the number of score sources (network monitors, sensors,
	// keyword counters, ...). Required, >= 1.
	Sources int
	// K is the number of top keys to report. Required, >= 1.
	K int
	// WindowBuckets is the sliding-window length in buckets: an
	// observation expires WindowBuckets Advance calls after it arrived.
	// Zero keeps everything (landmark window).
	WindowBuckets int
	// Algorithm answers the queries; defaults to BPA2. NRA and CA are
	// refused (a monitor reports scores; theirs are inexact).
	Algorithm Algorithm
	// Scoring combines the per-source scores; defaults to Sum.
	Scoring Scoring
	// Tracker selects the best-position structure for BPA/BPA2.
	Tracker Tracker
}

// Monitor is a continuous top-k query over sliding-window aggregates —
// the paper's network-monitoring scenario ("what are the top-k popular
// URLs?", Section 8) made incremental. Feed observations with Observe,
// advance time with Advance, and ask for the current ranking with TopK;
// each snapshot also reports how the ranking changed.
//
// A Monitor is not safe for concurrent use.
type Monitor struct {
	inner *stream.Monitor
}

// NewMonitor validates the configuration and returns an empty monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	alg := core.AlgBPA2
	if cfg.Algorithm != BPA2 {
		var err error
		alg, err = cfg.Algorithm.internal()
		if err != nil {
			return nil, err
		}
	}
	var f = cfg.Scoring
	if f == nil {
		f = Sum()
	}
	inner, err := stream.New(stream.Config{
		Sources:       cfg.Sources,
		K:             cfg.K,
		WindowBuckets: cfg.WindowBuckets,
		Algorithm:     alg,
		Scoring:       adaptScoring(f),
		Tracker:       bestpos.Kind(cfg.Tracker),
	})
	if err != nil {
		return nil, err
	}
	return &Monitor{inner: inner}, nil
}

// Observe adds delta to key's score at the given source in the current
// time bucket. Deltas may be negative (corrections); a key whose
// aggregate returns to zero leaves the universe.
func (m *Monitor) Observe(source int, key string, delta float64) error {
	return m.inner.Observe(source, key, delta)
}

// Advance closes the current time bucket and, with a sliding window,
// expires the bucket that falls off it.
func (m *Monitor) Advance() { m.inner.Advance() }

// MonitorEntry is one ranked key of a snapshot.
type MonitorEntry struct {
	Key   string
	Score float64
}

// MonitorChangeKind classifies a ranking change between snapshots.
type MonitorChangeKind uint8

const (
	// ChangeEntered: the key entered the ranking.
	ChangeEntered MonitorChangeKind = iota
	// ChangeLeft: the key left the ranking.
	ChangeLeft
	// ChangeMoved: the key changed rank.
	ChangeMoved
)

// String returns the change-kind name.
func (c MonitorChangeKind) String() string {
	switch c {
	case ChangeEntered:
		return "entered"
	case ChangeLeft:
		return "left"
	case ChangeMoved:
		return "moved"
	default:
		return fmt.Sprintf("MonitorChangeKind(%d)", uint8(c))
	}
}

// MonitorChange records one ranking difference between consecutive
// snapshots. Ranks are 1-based; 0 means "not in the ranking".
type MonitorChange struct {
	Key      string
	Kind     MonitorChangeKind
	Rank     int
	PrevRank int
}

// MonitorSnapshot is the result of one Monitor.TopK evaluation.
type MonitorSnapshot struct {
	// Query numbers the TopK calls, starting at 1.
	Query int
	// Items is the current ranking, best first; its length is
	// min(K, live keys).
	Items []MonitorEntry
	// Changes lists the differences against the previous snapshot:
	// entered and moved keys by new rank, then departed keys by previous
	// rank.
	Changes []MonitorChange
	// Universe is the number of live keys at evaluation time.
	Universe int
	// Accesses is the number of list accesses the query spent.
	Accesses int64
}

// TopK evaluates the continuous query against the current window and
// reports the ranking with changes since the previous call.
func (m *Monitor) TopK() (*MonitorSnapshot, error) {
	snap, err := m.inner.TopK()
	if err != nil {
		return nil, err
	}
	out := &MonitorSnapshot{
		Query:    snap.Query,
		Universe: snap.Universe,
		Accesses: snap.Counts.Total(),
	}
	out.Items = make([]MonitorEntry, len(snap.Items))
	for i, e := range snap.Items {
		out.Items[i] = MonitorEntry{Key: e.Key, Score: e.Score}
	}
	out.Changes = make([]MonitorChange, len(snap.Changes))
	for i, c := range snap.Changes {
		out.Changes[i] = MonitorChange{
			Key:      c.Key,
			Kind:     MonitorChangeKind(c.Kind),
			Rank:     c.Rank,
			PrevRank: c.PrevRank,
		}
	}
	return out, nil
}
