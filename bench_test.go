package topk

// Benchmarks: one per table/figure of the paper's evaluation (Section 6),
// plus the ablations from DESIGN.md. Each sub-benchmark measures one
// (algorithm, sweep point) pair over a pre-generated database and reports
// the paper's metrics alongside ns/op:
//
//	cost/op      execution cost (sorted + log2(n) * (random+direct))
//	accesses/op  total list accesses
//
// The sweeps run at benchDBScale of the paper's database sizes so that
// `go test -bench=. -benchmem` finishes in minutes; cmd/topk-bench
// regenerates the full-size figures (see EXPERIMENTS.md for measured
// full-size results). Shapes are identical.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/core"
	"topk/internal/dht"
	"topk/internal/dist"
	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/obs"
	"topk/internal/paperdb"
	"topk/internal/parallel"
	"topk/internal/score"
	"topk/internal/store"
	"topk/internal/store/stripe"
	"topk/internal/transport"
)

// benchDBScale shrinks the paper's n for benchmark runs (100,000 -> 10,000).
const benchDBScale = 0.1

func benchN(n int) int {
	v := int(float64(n) * benchDBScale)
	if v < 200 {
		v = 200
	}
	return v
}

// benchMs are the m sweep points benchmarked per figure; the full 2..18
// sweep is cmd/topk-bench territory.
var benchMs = []int{2, 8, 18}

var benchAlgs = []core.Algorithm{core.AlgTA, core.AlgBPA, core.AlgBPA2}

// runAlgBench benchmarks one algorithm over one database and reports the
// paper's metrics.
func runAlgBench(b *testing.B, db *list.Database, alg core.Algorithm, k int) {
	b.Helper()
	opts := core.Options{K: k, Scoring: score.Sum{}}
	model := access.DefaultCostModel(db.N())
	var lastCost float64
	var lastAccesses int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(alg, db, opts)
		if err != nil {
			b.Fatal(err)
		}
		lastCost = res.Cost(model)
		lastAccesses = res.Counts.Total()
	}
	b.ReportMetric(lastCost, "cost/op")
	b.ReportMetric(float64(lastAccesses), "accesses/op")
}

// benchMSweep is the common shape of Figures 3-11.
func benchMSweep(b *testing.B, kind gen.Kind, alpha float64) {
	for _, m := range benchMs {
		db := gen.MustGenerate(gen.Spec{Kind: kind, N: benchN(100_000), M: m, Alpha: alpha, Seed: 1})
		for _, alg := range benchAlgs {
			b.Run(fmt.Sprintf("m=%d/%s", m, alg), func(b *testing.B) {
				runAlgBench(b, db, alg, 20)
			})
		}
	}
}

// benchKSweep is the common shape of Figures 12-14.
func benchKSweep(b *testing.B, kind gen.Kind, alpha float64) {
	db := gen.MustGenerate(gen.Spec{Kind: kind, N: benchN(100_000), M: 8, Alpha: alpha, Seed: 1})
	for _, k := range []int{20, 100} {
		for _, alg := range benchAlgs {
			b.Run(fmt.Sprintf("k=%d/%s", k, alg), func(b *testing.B) {
				runAlgBench(b, db, alg, k)
			})
		}
	}
}

// benchNSweep is the common shape of Figures 15-17.
func benchNSweep(b *testing.B, kind gen.Kind, alpha float64) {
	for _, n := range []int{25_000, 100_000, 200_000} {
		db := gen.MustGenerate(gen.Spec{Kind: kind, N: benchN(n), M: 8, Alpha: alpha, Seed: 1})
		for _, alg := range benchAlgs {
			b.Run(fmt.Sprintf("n=%d/%s", benchN(n), alg), func(b *testing.B) {
				runAlgBench(b, db, alg, 20)
			})
		}
	}
}

// --- Figures 3-5: uniform database, m sweep ---------------------------

// BenchmarkFig03 regenerates Figure 3 (execution cost vs m, uniform);
// read cost/op. Figure 4 is accesses/op of the same runs; Figure 5 is
// ns/op (response time).
func BenchmarkFig03(b *testing.B) { benchMSweep(b, gen.Uniform, 0) }

// BenchmarkFig04 regenerates Figure 4 (number of accesses vs m, uniform);
// read accesses/op.
func BenchmarkFig04(b *testing.B) { benchMSweep(b, gen.Uniform, 0) }

// BenchmarkFig05 regenerates Figure 5 (response time vs m, uniform);
// read ns/op.
func BenchmarkFig05(b *testing.B) { benchMSweep(b, gen.Uniform, 0) }

// --- Figures 6-8: Gaussian database, m sweep --------------------------

// BenchmarkFig06 regenerates Figure 6 (execution cost vs m, Gaussian).
func BenchmarkFig06(b *testing.B) { benchMSweep(b, gen.Gaussian, 0) }

// BenchmarkFig07 regenerates Figure 7 (accesses vs m, Gaussian).
func BenchmarkFig07(b *testing.B) { benchMSweep(b, gen.Gaussian, 0) }

// BenchmarkFig08 regenerates Figure 8 (response time vs m, Gaussian).
func BenchmarkFig08(b *testing.B) { benchMSweep(b, gen.Gaussian, 0) }

// --- Figures 9-11: correlated databases, m sweep ----------------------

// BenchmarkFig09 regenerates Figure 9 (execution cost vs m, correlated
// alpha=0.001).
func BenchmarkFig09(b *testing.B) { benchMSweep(b, gen.Correlated, 0.001) }

// BenchmarkFig10 regenerates Figure 10 (execution cost vs m, correlated
// alpha=0.01).
func BenchmarkFig10(b *testing.B) { benchMSweep(b, gen.Correlated, 0.01) }

// BenchmarkFig11 regenerates Figure 11 (execution cost vs m, correlated
// alpha=0.1).
func BenchmarkFig11(b *testing.B) { benchMSweep(b, gen.Correlated, 0.1) }

// --- Figures 12-14: k sweeps ------------------------------------------

// BenchmarkFig12 regenerates Figure 12 (execution cost vs k, uniform).
func BenchmarkFig12(b *testing.B) { benchKSweep(b, gen.Uniform, 0) }

// BenchmarkFig13 regenerates Figure 13 (execution cost vs k, correlated
// alpha=0.01).
func BenchmarkFig13(b *testing.B) { benchKSweep(b, gen.Correlated, 0.01) }

// BenchmarkFig14 regenerates Figure 14 (execution cost vs k, correlated
// alpha=0.001).
func BenchmarkFig14(b *testing.B) { benchKSweep(b, gen.Correlated, 0.001) }

// --- Figures 15-17: n sweeps ------------------------------------------

// BenchmarkFig15 regenerates Figure 15 (execution cost vs n, uniform).
func BenchmarkFig15(b *testing.B) { benchNSweep(b, gen.Uniform, 0) }

// BenchmarkFig16 regenerates Figure 16 (execution cost vs n, correlated
// alpha=0.01).
func BenchmarkFig16(b *testing.B) { benchNSweep(b, gen.Correlated, 0.01) }

// BenchmarkFig17 regenerates Figure 17 (execution cost vs n, correlated
// alpha=0.0001).
func BenchmarkFig17(b *testing.B) { benchNSweep(b, gen.Correlated, 0.0001) }

// --- Table 1 / worked examples ----------------------------------------

// BenchmarkExamples runs every algorithm over the paper's Figure 1 and
// Figure 2 databases (Examples 1-3 and the Section 5.1 example).
func BenchmarkExamples(b *testing.B) {
	figs := []struct {
		name  string
		build func() (*list.Database, error)
	}{
		{"figure1", paperdb.Figure1},
		{"figure2", paperdb.Figure2},
	}
	for _, fig := range figs {
		db, err := fig.build()
		if err != nil {
			b.Fatal(err)
		}
		for _, alg := range core.Algorithms() {
			b.Run(fmt.Sprintf("%s/%s", fig.name, alg), func(b *testing.B) {
				runAlgBench(b, db, alg, 3)
			})
		}
	}
}

// --- Ablations ----------------------------------------------------------

// BenchmarkTrackers compares the best-position structures of Section 5.2
// under BPA on the default uniform workload.
func BenchmarkTrackers(b *testing.B) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: benchN(100_000), M: 8, Seed: 1})
	for _, kind := range bestpos.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			opts := core.Options{K: 20, Scoring: score.Sum{}, Tracker: kind}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(core.AlgBPA, db, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrackerMarkSeen isolates the tracker data structures: marking
// u random positions in a list of n, the regime analysis of Section 5.2.
func BenchmarkTrackerMarkSeen(b *testing.B) {
	const n = 100_000
	positions := make([]int, 4096)
	rng := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: len(positions), M: 1, Seed: 3})
	for i := range positions {
		// Derive a deterministic pseudo-random position stream from the
		// generated list's permutation.
		positions[i] = 1 + int(rng.List(0).At(i+1).Item)*(n/len(positions))
	}
	for _, kind := range bestpos.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := bestpos.New(kind, n)
				for _, p := range positions {
					tr.MarkSeen(p)
				}
			}
		})
	}
}

// BenchmarkTAMemoized quantifies TA's redundant random accesses (the
// ablation of DESIGN.md).
func BenchmarkTAMemoized(b *testing.B) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: benchN(100_000), M: 8, Seed: 1})
	for _, memo := range []bool{false, true} {
		name := "plain"
		if memo {
			name = "memoized"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{K: 20, Scoring: score.Sum{}, Memoize: memo}
			model := access.DefaultCostModel(db.N())
			var lastCost float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.AlgTA, db, opts)
				if err != nil {
					b.Fatal(err)
				}
				lastCost = res.Cost(model)
			}
			b.ReportMetric(lastCost, "cost/op")
		})
	}
}

// BenchmarkDistributed measures the simulated message counts of the
// distributed protocols (Section 5 + the TPUT family).
func BenchmarkDistributed(b *testing.B) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: benchN(20_000), M: 6, Seed: 1})
	protocols := []struct {
		name string
		run  func(*list.Database, dist.Options) (*dist.Result, error)
	}{
		{"dist-ta", dist.TA},
		{"dist-bpa", dist.BPA},
		{"dist-bpa2", dist.BPA2},
		{"tput", dist.TPUT},
		{"tput-a", dist.TPUTA},
	}
	for _, p := range protocols {
		b.Run(p.name, func(b *testing.B) {
			var msgs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := p.run(db, dist.Options{K: 20, Scoring: score.Sum{}})
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Net.Messages
			}
			b.ReportMetric(float64(msgs), "messages/op")
		})
	}
}

// BenchmarkTransport sweeps the distributed protocols over the
// Concurrent transport backend at 1ms/10ms/50ms injected owner
// round-trip latency. The reported wallclock metric is the backend's
// virtual clock — per protocol round, the max (not the sum) of the
// owners' serialized exchange costs — so it measures what a real
// deployment would feel: TPUT's three batched fan-outs cost three
// round-trips however deep the lists, while the per-access protocols pay
// a data-dependent chain of rounds. rounds and the busiest owner's
// message count accompany it, since the round structure is exactly what
// the latency multiplies.
func BenchmarkTransport(b *testing.B) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: benchN(20_000), M: 6, Seed: 1})
	ctx := context.Background()
	protocols := []struct {
		name string
		run  func(context.Context, transport.Transport, dist.Options) (*dist.Result, error)
	}{
		{"dist-ta", dist.TAOver},
		{"dist-bpa", dist.BPAOver},
		{"dist-bpa2", dist.BPA2Over},
		{"tput", dist.TPUTOver},
		{"tput-a", dist.TPUTAOver},
	}
	for _, rtt := range []time.Duration{time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond} {
		for _, p := range protocols {
			b.Run(fmt.Sprintf("rtt=%s/%s", rtt, p.name), func(b *testing.B) {
				var res *dist.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tp, err := transport.NewConcurrent(db, transport.ConstantLatency(rtt))
					if err != nil {
						b.Fatal(err)
					}
					res, err = p.run(ctx, tp, dist.Options{K: 20, Scoring: score.Sum{}})
					if err != nil {
						b.Fatal(err)
					}
					tp.Close()
				}
				var busiest int64
				for _, c := range res.Net.PerOwner {
					if c > busiest {
						busiest = c
					}
				}
				b.ReportMetric(float64(res.Elapsed.Microseconds())/1e3, "wallclock-ms/op")
				b.ReportMetric(float64(res.Net.Rounds), "rounds/op")
				b.ReportMetric(float64(busiest), "max-owner-msgs/op")
			})
		}
	}
}

// BenchmarkConcurrentSessions measures originator throughput
// (queries/sec) against one shared HTTP owner cluster as the number of
// concurrent originators grows, at 1ms and 10ms injected owner latency.
// Before the session redesign this workload was impossible: the owners
// held one query's state at a time, so a second originator corrupted the
// first. Now each query runs in its own owner-side session and
// throughput should scale with originators until the owners saturate —
// the ROADMAP's concurrent-originators direction made measurable. TPUT
// keeps each query at three round-trips, so the latency injected per
// /rpc exchange dominates and concurrency has something to overlap.
func BenchmarkConcurrentSessions(b *testing.B) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 2_000, M: 3, Seed: 1})
	for _, lat := range []time.Duration{time.Millisecond, 10 * time.Millisecond} {
		urls := make([]string, db.M())
		var closers []func()
		for i := range urls {
			srv, err := transport.NewServer(db, i)
			if err != nil {
				b.Fatal(err)
			}
			inner := srv.Handler()
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasPrefix(r.URL.Path, "/rpc/") {
					time.Sleep(lat)
				}
				inner.ServeHTTP(w, r)
			}))
			closers = append(closers, ts.Close)
			urls[i] = ts.URL
		}
		hc, err := transport.DialOwners(urls, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, originators := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("lat=%s/originators=%d", lat, originators), func(b *testing.B) {
				ctx := context.Background()
				// Pre-fill and close the work queue before the workers
				// start: if every worker bails out on an error, nothing
				// is left blocked on a send.
				queries := make(chan struct{}, b.N)
				for i := 0; i < b.N; i++ {
					queries <- struct{}{}
				}
				close(queries)
				var wg sync.WaitGroup
				b.ResetTimer()
				for w := 0; w < originators; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for range queries {
							if _, err := dist.TPUTOver(ctx, hc, dist.Options{K: 5, Scoring: score.Sum{}}); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "queries/sec")
				}
			})
		}
		hc.Close()
		for _, c := range closers {
			c()
		}
	}
}

// BenchmarkRecoveryOverhead prices the session-handoff machinery on the
// BenchmarkConcurrentSessions workload: the same shared owner cluster,
// every list now doubly replicated, swept with state mirroring off
// (DisableHandoff) and on. The delta is the synchronous control-plane
// sync after each successful sessionful exchange — the premium a
// deployment pays for zero failed queries. BPA2 is the stressor: its
// probe traffic is entirely sessionful, so every exchange mirrors;
// stateless protocols pay nothing either way.
func BenchmarkRecoveryOverhead(b *testing.B) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 2_000, M: 3, Seed: 1})
	const lat = time.Millisecond
	topo := make(transport.Topology, db.M())
	var closers []func()
	for li := range topo {
		for r := 0; r < 2; r++ {
			srv, err := transport.NewServer(db, li)
			if err != nil {
				b.Fatal(err)
			}
			inner := srv.Handler()
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasPrefix(r.URL.Path, "/rpc/") {
					time.Sleep(lat)
				}
				inner.ServeHTTP(w, r)
			}))
			closers = append(closers, ts.Close)
			topo[li] = append(topo[li], ts.URL)
		}
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for _, handoff := range []bool{false, true} {
		hc, err := transport.Dial(context.Background(), transport.DialConfig{
			Topology:       topo,
			DisableHandoff: !handoff,
			HealthInterval: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, originators := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("handoff=%v/originators=%d", handoff, originators), func(b *testing.B) {
				ctx := context.Background()
				queries := make(chan struct{}, b.N)
				for i := 0; i < b.N; i++ {
					queries <- struct{}{}
				}
				close(queries)
				var wg sync.WaitGroup
				b.ResetTimer()
				for w := 0; w < originators; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for range queries {
							if _, err := dist.BPA2Over(ctx, hc, dist.Options{K: 5, Scoring: score.Sum{}}); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "queries/sec")
				}
			})
		}
		hc.Close()
	}
}

// BenchmarkObservabilityOverhead prices the observability layer on the
// BenchmarkConcurrentSessions workload: the same shared owner cluster at
// 10ms injected latency, 16 concurrent originators hammering TPUT, swept
// with the process-wide metrics registry off, on, and on with
// per-exchange tracing armed. The obs=on/trace=off point is the gated
// one — the ISSUE requires it within 5% of obs=off throughput, which
// holds easily because each exchange costs a handful of atomic adds
// against a 10ms wire round-trip. Tracing adds one span append per
// exchange on top.
func BenchmarkObservabilityOverhead(b *testing.B) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 2_000, M: 3, Seed: 1})
	const lat = 10 * time.Millisecond
	const originators = 16
	urls := make([]string, db.M())
	var closers []func()
	for i := range urls {
		srv, err := transport.NewServer(db, i)
		if err != nil {
			b.Fatal(err)
		}
		inner := srv.Handler()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/rpc/") {
				time.Sleep(lat)
			}
			inner.ServeHTTP(w, r)
		}))
		closers = append(closers, ts.Close)
		urls[i] = ts.URL
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	hc, err := transport.DialOwners(urls, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer hc.Close()

	prev := obs.Default.Enabled()
	defer obs.Default.SetEnabled(prev)
	for _, mode := range []struct {
		name    string
		metrics bool
		trace   bool
	}{
		{"obs=off", false, false},
		{"obs=on", true, false},
		{"obs=on+trace", true, true},
	} {
		obs.Default.SetEnabled(mode.metrics)
		b.Run(mode.name, func(b *testing.B) {
			ctx := context.Background()
			queries := make(chan struct{}, b.N)
			for i := 0; i < b.N; i++ {
				queries <- struct{}{}
			}
			close(queries)
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < originators; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range queries {
						opts := dist.Options{K: 5, Scoring: score.Sum{}, Trace: mode.trace}
						if _, err := dist.TPUTOver(ctx, hc, opts); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "queries/sec")
			}
		})
	}
}

// recordingTransport wraps a Transport and records every wire message
// the originator actually ships — post-coalescing, so batches appear as
// batches, exactly what a codec would see on the HTTP path.
type recordingTransport struct {
	transport.Transport
	reqs  []transport.Request
	resps []transport.Response
}

func (r *recordingTransport) Open(ctx context.Context, tracker bestpos.Kind) (transport.Session, error) {
	s, err := r.Transport.Open(ctx, tracker)
	if err != nil {
		return nil, err
	}
	return &recordingSession{Session: s, p: r}, nil
}

type recordingSession struct {
	transport.Session
	p *recordingTransport
}

func (s *recordingSession) Do(ctx context.Context, owner int, req transport.Request) (transport.Response, error) {
	resp, err := s.Session.Do(ctx, owner, req)
	if err == nil {
		s.p.reqs = append(s.p.reqs, req)
		s.p.resps = append(s.p.resps, resp)
	}
	return resp, err
}

func (s *recordingSession) DoAll(ctx context.Context, calls []transport.Call) ([]transport.Response, error) {
	resps, err := s.Session.DoAll(ctx, calls)
	if err == nil {
		for i, c := range calls {
			s.p.reqs = append(s.p.reqs, c.Req)
			s.p.resps = append(s.p.resps, resps[i])
		}
	}
	return resps, err
}

// encodeTraceJSON runs one query's wire trace through the JSON codec
// (encode requests and responses, decode responses — the originator's
// hot path) and returns the total wire bytes.
func encodeTraceJSON(b *testing.B, reqs []transport.Request, resps []transport.Response) int64 {
	var total int64
	for _, req := range reqs {
		buf, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		total += int64(len(buf))
	}
	for i, resp := range resps {
		buf, err := json.Marshal(resp)
		if err != nil {
			b.Fatal(err)
		}
		total += int64(len(buf))
		kind := reqs[i].Kind()
		if kind == transport.KindBatch {
			var back transport.BatchResp
			err = json.Unmarshal(buf, &back)
		} else {
			_, err = transport.UnmarshalResponseJSON(kind, buf)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	return total
}

// encodeTraceBinary is the binary-codec mirror of encodeTraceJSON.
func encodeTraceBinary(b *testing.B, reqs []transport.Request, resps []transport.Response) int64 {
	var total int64
	var buf []byte
	for _, req := range reqs {
		out, err := transport.AppendRequestBinary(buf[:0], req)
		if err != nil {
			b.Fatal(err)
		}
		total += int64(len(out))
		buf = out
	}
	for _, resp := range resps {
		out, err := transport.AppendResponseBinary(buf[:0], resp)
		if err != nil {
			b.Fatal(err)
		}
		total += int64(len(out))
		buf = out
		if _, err := transport.DecodeResponseBinary(out); err != nil {
			b.Fatal(err)
		}
	}
	return total
}

// BenchmarkCodec compares the two wire codecs on whole-query message
// traces: each seeded protocol run is recorded post-coalescing (batches
// included), then every recorded message is encoded — and every response
// decoded — under JSON and under the binary codec. wire-bytes/query is
// the metric the binary codec exists for; run with -benchmem for the
// allocation delta of the encode/decode hot path.
func BenchmarkCodec(b *testing.B) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: benchN(20_000), M: 6, Seed: 1})
	ctx := context.Background()
	protocols := []struct {
		name string
		run  func(context.Context, transport.Transport, dist.Options) (*dist.Result, error)
	}{
		{"dist-ta", dist.TAOver},
		{"dist-bpa", dist.BPAOver},
		{"dist-bpa2", dist.BPA2Over},
		{"tput", dist.TPUTOver},
	}
	for _, p := range protocols {
		lb, err := transport.NewLoopback(db)
		if err != nil {
			b.Fatal(err)
		}
		rec := &recordingTransport{Transport: lb}
		if _, err := p.run(ctx, rec, dist.Options{K: 20, Scoring: score.Sum{}}); err != nil {
			b.Fatal(err)
		}
		codecs := []struct {
			name string
			run  func(*testing.B, []transport.Request, []transport.Response) int64
		}{
			{"json", encodeTraceJSON},
			{"binary", encodeTraceBinary},
		}
		for _, c := range codecs {
			b.Run(p.name+"/"+c.name, func(b *testing.B) {
				b.ReportAllocs()
				var bytes int64
				for i := 0; i < b.N; i++ {
					bytes = c.run(b, rec.reqs, rec.resps)
				}
				b.ReportMetric(float64(bytes), "wire-bytes/query")
				b.ReportMetric(float64(len(rec.reqs)), "exchanges/query")
			})
		}
	}
}

// TestBinaryCodecQueryBytes pins the acceptance bound on the seeded
// workloads themselves: for every protocol, a whole query's wire traffic
// must shrink by at least 40% under the binary codec. Deterministic —
// the traces are seeded.
func TestBinaryCodecQueryBytes(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 2_000, M: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	runs := []struct {
		name string
		run  func(context.Context, transport.Transport, dist.Options) (*dist.Result, error)
	}{
		{"dist-ta", dist.TAOver},
		{"dist-bpa", dist.BPAOver},
		{"dist-bpa2", dist.BPA2Over},
		{"tput", dist.TPUTOver},
		{"tput-a", dist.TPUTAOver},
	}
	for _, p := range runs {
		lb, err := transport.NewLoopback(db.db)
		if err != nil {
			t.Fatal(err)
		}
		rec := &recordingTransport{Transport: lb}
		if _, err := p.run(ctx, rec, dist.Options{K: 10, Scoring: score.Sum{}}); err != nil {
			t.Fatal(err)
		}
		var jsonBytes, binBytes int64
		for i, req := range rec.reqs {
			js, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			bin, err := transport.AppendRequestBinary(nil, req)
			if err != nil {
				t.Fatal(err)
			}
			jsonBytes += int64(len(js))
			binBytes += int64(len(bin))
			js, err = json.Marshal(rec.resps[i])
			if err != nil {
				t.Fatal(err)
			}
			bin, err = transport.AppendResponseBinary(nil, rec.resps[i])
			if err != nil {
				t.Fatal(err)
			}
			jsonBytes += int64(len(js))
			binBytes += int64(len(bin))
		}
		if float64(binBytes) > 0.6*float64(jsonBytes) {
			t.Errorf("%s: binary wire %d bytes vs JSON %d — less than 40%% smaller", p.name, binBytes, jsonBytes)
		} else {
			t.Logf("%s: binary %d bytes, JSON %d bytes (%.0f%% smaller)",
				p.name, binBytes, jsonBytes, 100*(1-float64(binBytes)/float64(jsonBytes)))
		}
	}
}

// BenchmarkDHT measures the overlay extension (paper §8 future work):
// dist-bpa2 over Chord rings of growing size, reporting total hops.
func BenchmarkDHT(b *testing.B) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: benchN(20_000), M: 4, Seed: 1})
	for _, ringSize := range []int{256, 4096} {
		ring, err := dht.NewRing(ringSize, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("nodes=%d", ringSize), func(b *testing.B) {
			var hops int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := dht.TopK(ring, db, dist.Options{K: 20, Scoring: score.Sum{}}, dist.BPA2, dht.Cached, 1)
				if err != nil {
					b.Fatal(err)
				}
				hops = res.Hops
			}
			b.ReportMetric(float64(hops), "hops/op")
		})
	}
}

// BenchmarkFaginBaselines places the paper's algorithms inside the wider
// Fagin framework (DESIGN.md ablation; exp id "fagin"): the sorted-only
// NRA, the balanced CA, TA, and BPA2 on the default uniform workload.
func BenchmarkFaginBaselines(b *testing.B) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: benchN(100_000), M: 8, Seed: 1})
	for _, alg := range []core.Algorithm{core.AlgNRA, core.AlgCA, core.AlgTA, core.AlgBPA2} {
		b.Run(alg.String(), func(b *testing.B) {
			runAlgBench(b, db, alg, 20)
		})
	}
}

// BenchmarkParallelExecutor compares the sequential and the
// per-list-goroutine executor (exp id "parallel"). Answers and access
// counts are identical; the delta is pure scheduling.
func BenchmarkParallelExecutor(b *testing.B) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: benchN(100_000), M: 8, Seed: 1})
	opts := core.Options{K: 20, Scoring: score.Sum{}}
	for _, alg := range []core.Algorithm{core.AlgTA, core.AlgBPA2} {
		b.Run(alg.String()+"/sequential", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(alg, db, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(alg.String()+"/parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parallel.Run(alg, db, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRestrictedAccess compares TAz and BPAz when half the lists
// are random-access only, over an independent and a correlated workload
// (BPAz's gain needs correlation; see examples/websources).
func BenchmarkRestrictedAccess(b *testing.B) {
	sortable := []bool{true, false, true, false, true, false, true, false}
	for _, wl := range []struct {
		name  string
		kind  gen.Kind
		alpha float64
	}{{"uniform", gen.Uniform, 0}, {"correlated", gen.Correlated, 0.01}} {
		db := gen.MustGenerate(gen.Spec{Kind: wl.kind, N: benchN(100_000), M: 8, Alpha: wl.alpha, Seed: 1})
		restr := core.Restricted{Sortable: sortable}
		runs := []struct {
			name string
			run  func(*access.Probe, core.Options, core.Restricted) (*core.Result, error)
		}{{"TAz", core.TAz}, {"BPAz", core.BPAz}}
		for _, r := range runs {
			b.Run(wl.name+"/"+r.name, func(b *testing.B) {
				opts := core.Options{K: 20, Scoring: score.Sum{}}
				var accesses int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := r.run(access.NewProbe(db), opts, restr)
					if err != nil {
						b.Fatal(err)
					}
					accesses = res.Counts.Total()
				}
				b.ReportMetric(float64(accesses), "accesses/op")
			})
		}
	}
}

// BenchmarkMonitor measures one continuous-query re-evaluation over a
// sliding window with a thousand live keys.
func BenchmarkMonitor(b *testing.B) {
	mon, err := NewMonitor(MonitorConfig{Sources: 4, K: 20, WindowBuckets: 5})
	if err != nil {
		b.Fatal(err)
	}
	for src := 0; src < 4; src++ {
		for i := 0; i < 1000; i++ {
			if err := mon.Observe(src, fmt.Sprintf("key%04d", i), float64((i*7+src)%101)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.TopK(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPI measures the facade overhead end to end.
func BenchmarkPublicAPI(b *testing.B) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: benchN(100_000), M: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range []Algorithm{BPA2, BPA, TA} {
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.TopK(Query{K: 20, Algorithm: alg}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStripeStore prices the disk-backed store against RAM on the
// two axes that matter operationally: query throughput (TA over the same
// database, memory-resident vs served from a stripe file through the
// bounded cache) and owner startup (cold open = full binary reload;
// warm restart = stripe reopen, which reads only the footer). BENCH_7.json
// holds the reference numbers.
func BenchmarkStripeStore(b *testing.B) {
	spec := gen.Spec{Kind: gen.Uniform, N: benchN(100_000), M: 8, Seed: 1}
	db := gen.MustGenerate(spec)
	dir := b.TempDir()
	binPath := dir + "/db.topk"
	stripePath := dir + "/db.stripe"
	if err := store.SaveFile(binPath, db); err != nil {
		b.Fatal(err)
	}
	if err := stripe.Create(stripePath, db, stripe.WriteOptions{}); err != nil {
		b.Fatal(err)
	}

	opts := core.Options{K: 20, Scoring: score.Sum{}}
	b.Run("query/ram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(core.AlgTA, db, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query/stripe", func(b *testing.B) {
		sdb, err := stripe.Open(stripePath, stripe.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer sdb.Close()
		disk, err := sdb.Database()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(core.AlgTA, disk, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("open/cold-binary-reload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.LoadFile(binPath); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("open/warm-stripe-reopen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sdb, err := stripe.Open(stripePath, stripe.Options{})
			if err != nil {
				b.Fatal(err)
			}
			// One point read proves the reopened file serves; the rest
			// of the data stays untouched, which is the warm property.
			sdb.List(0).At(1)
			sdb.Close()
		}
	})
}
