package topk

import (
	"context"
	"net/http"
	"reflect"
	"testing"

	"topk/internal/obs"
)

// TestExecDistributedTrace: WithTrace records one span per wire
// exchange over the in-process simulation, and runs without the option
// carry no trace. The traced run's answers and accounting stay
// bit-identical to the untraced run's.
func TestExecDistributedTrace(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 200, M: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, p := range Protocols() {
		t.Run(p.String(), func(t *testing.T) {
			plain, err := db.ExecDistributed(ctx, Query{K: 8}, p)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Stats.Trace != nil {
				t.Fatalf("untraced run carries %d spans", len(plain.Stats.Trace))
			}
			traced, err := db.ExecDistributed(ctx, Query{K: 8}, p, WithTrace())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(traced.Items, plain.Items) {
				t.Error("tracing changed the answers")
			}
			if !reflect.DeepEqual(traced.Stats.Net, plain.Stats.Net) {
				t.Errorf("tracing perturbed Net: %+v vs %+v", traced.Stats.Net, plain.Stats.Net)
			}
			if int64(len(traced.Stats.Trace)) != traced.Stats.Net.Exchanges {
				t.Errorf("trace has %d spans, want Net.Exchanges = %d",
					len(traced.Stats.Trace), traced.Stats.Net.Exchanges)
			}
			var msgs int64
			for _, sp := range traced.Stats.Trace {
				if sp.Owner < 0 || sp.Owner >= db.M() || sp.Kind == "" {
					t.Errorf("malformed span %+v", sp)
				}
				msgs += int64(sp.Msgs)
			}
			if msgs*2 != traced.Stats.Net.Messages {
				t.Errorf("spans carry %d logical requests, want Net.Messages/2 = %d",
					msgs, traced.Stats.Net.Messages/2)
			}
		})
	}
}

// TestRestartAccountingParityObserved is TestRestartAccountingParity
// with the observability layer fully on — metrics enabled and the
// query traced: a mid-query hiccup plus a whole-query restart must
// still leave answers and primary accounting bit-identical to the
// undisturbed simulation, and the trace covers exactly the completing
// attempt.
func TestRestartAccountingParityObserved(t *testing.T) {
	prev := obs.Default.Enabled()
	obs.Default.SetEnabled(true)
	t.Cleanup(func() { obs.Default.SetEnabled(prev) })

	db, err := Generate(GenSpec{Kind: GenUniform, N: 200, M: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := Query{K: 8}
	for _, p := range Protocols() {
		t.Run(p.String(), func(t *testing.T) {
			want, err := db.ExecDistributed(ctx, q, p)
			if err != nil {
				t.Fatal(err)
			}
			c := dialFlatWithGates(t, db,
				ClusterConfig{Retries: -1, Restart: RestartAlways},
				func(li int, h http.Handler) http.Handler {
					if li == 0 {
						return &hiccupGate{inner: h, n: 2}
					}
					return h
				})
			got, err := c.Exec(ctx, q, p, WithTrace())
			if err != nil {
				t.Fatalf("restarted query failed: %v", err)
			}
			if got.Stats.Recovery.Restarts != 1 {
				t.Fatalf("restarts = %d, want 1 — the hiccup never fired and the test proved nothing", got.Stats.Recovery.Restarts)
			}
			for i := range want.Items {
				if got.Items[i].Item != want.Items[i].Item || got.Items[i].Score != want.Items[i].Score {
					t.Errorf("answer %d: %+v vs undisturbed %+v", i, got.Items[i], want.Items[i])
				}
			}
			gn, wn := got.Stats.Net, want.Stats.Net
			gn.Elapsed, wn.Elapsed = 0, 0 // real time vs simulated zero
			if !reflect.DeepEqual(gn, wn) {
				t.Errorf("primary accounting diverged with observability on:\n%+v\nvs undisturbed\n%+v", gn, wn)
			}
			// The trace describes the completing attempt — the one Net
			// accounts for — not the abandoned one.
			if int64(len(got.Stats.Trace)) != gn.Exchanges {
				t.Errorf("trace has %d spans, want Net.Exchanges = %d", len(got.Stats.Trace), gn.Exchanges)
			}
			for _, sp := range got.Stats.Trace {
				if sp.Err != "" {
					t.Errorf("completing attempt's trace carries a failed span: %+v", sp)
				}
				if sp.URL == "" || sp.Replica < 0 {
					t.Errorf("cluster span missing replica/url: %+v", sp)
				}
			}
		})
	}
}
