package topk

import "topk/internal/score"

// Scoring combines the m local scores of an item into its overall score.
// The algorithms require monotonicity: raising any local score must not
// lower the result (paper Section 2). Combine must not retain the slice.
type Scoring interface {
	Combine(locals []float64) float64
	Name() string
}

// Sum returns the paper's default scoring function, f = s1 + ... + sm.
func Sum() Scoring { return score.Sum{} }

// Avg returns the arithmetic-mean scoring function.
func Avg() Scoring { return score.Avg{} }

// Min returns the minimum scoring function (fuzzy conjunction).
func Min() Scoring { return score.Min{} }

// Max returns the maximum scoring function (fuzzy disjunction).
func Max() Scoring { return score.Max{} }

// WeightedSum returns f = sum(weights[i] * si). Weights must be finite
// and non-negative (negative weights would break monotonicity).
func WeightedSum(weights []float64) (Scoring, error) {
	return score.NewWeightedSum(weights)
}

// adaptScoring lifts a public Scoring into the internal interface. The
// two interfaces have identical method sets, so the assertion always
// succeeds; the distinct public type exists only to keep internal
// packages out of the API surface.
func adaptScoring(s Scoring) score.Func {
	return s.(score.Func)
}
