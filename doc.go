// Package topk answers top-k queries over sorted lists, implementing the
// Best Position Algorithms of Akbarinia, Pacitti and Valduriez ("Best
// Position Algorithms for Top-k Queries", VLDB 2007) together with the
// classic baselines they improve on.
//
// # Model
//
// A database is a set of m sorted lists over the same n data items: every
// item appears in every list with a local score, and each list is sorted
// by descending local score (Section 2 of the paper). A top-k query asks
// for the k items whose overall score — a monotone function f of the m
// local scores, typically their sum — is highest.
//
// # Algorithms
//
//   - Naive: full scan, O(m*n). Correctness baseline.
//   - FA: Fagin's Algorithm. Scans until k items are seen in all lists.
//   - TA: the Threshold Algorithm, stopping on the threshold computed
//     from the last scores seen under sorted access.
//   - BPA: the paper's Best Position Algorithm. Tracks the positions seen
//     in each list and stops on the score at the "best position" (the
//     deepest contiguously seen prefix). Never worse than TA, up to
//     (m-1) times cheaper.
//   - BPA2: the paper's optimized variant. Probes each list directly at
//     its first unseen position, never touching a position twice, and
//     keeps the position bookkeeping at the lists rather than the query
//     coordinator. The default.
//   - NRA / CA: the No-Random-Access and Combined algorithms of Fagin,
//     Lotem and Naor — the rest of the design space the paper's
//     algorithms live in. They guarantee the top-k item set but may
//     report score bounds instead of exact scores (Result.Inexact).
//
// # Quick start
//
// Every entry point takes a context.Context: cancellation and deadlines
// are honored at access granularity, so a served query can be abandoned
// the moment its client disconnects.
//
//	db, err := topk.FromColumns([][]float64{
//	    {0.9, 0.3, 0.6},  // list 1: local scores of items 0, 1, 2
//	    {0.2, 0.8, 0.7},  // list 2
//	})
//	if err != nil { ... }
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	res, err := db.Exec(ctx, topk.Query{K: 2})
//	if err != nil { ... }
//	for _, it := range res.Items {
//	    fmt.Println(it.Item, it.Score)
//	}
//
// Result.Stats reports the paper's cost metrics (sorted/random/direct
// access counts and the weighted execution cost) so the algorithms can be
// compared on any workload.
//
// When k is not known upfront, ProgressiveCtx enumerates answers rank by
// rank — the any-time iterator shape of ranked enumeration: each Next
// returns the next certified answer, a canceled or expired ctx ends the
// stream (Next false, Err reports why), and everything delivered before
// the deadline remains a correct prefix of the ranking.
//
// # Migration from the pre-context API
//
// The context-free signatures remain as thin deprecated wrappers, each
// exactly equivalent to its replacement under context.Background():
//
//	db.TopK(q)                    -> db.Exec(ctx, q)
//	db.Progressive(q)             -> db.ProgressiveCtx(ctx, q)
//	db.RunDistributed(q, p)       -> db.ExecDistributed(ctx, q, p)
//	cluster.RunDistributed(q, p)  -> cluster.Exec(ctx, q, p)
//
// Answers, Stats and access accounting are bit-identical between a
// wrapper and its ctx form; only cancellation behavior is new.
//
// # Distributed execution
//
// ExecDistributed executes the query in the paper's distributed setting
// (implemented by internal/dist): each sorted list lives at its own owner
// node and the query originator exchanges explicit request/response
// messages with the owners. Five protocols are available, differing in
// where the bookkeeping lives and what travels:
//
//	protocol   exchanges                 positions travel  bookkeeping at
//	DistTA     2 messages per access     no                originator
//	DistBPA    2 messages per access     yes (payload)     originator
//	DistBPA2   2 messages per access     never             list owners
//	TPUT       3 batched phases          no                originator
//	TPUTA      3 batched phases          no                originator
//
// DistBPA2 is the paper's Section 5 design — owners manage their own
// best positions, the originator keeps only the answer set and the m
// best-position scores — and the default. TPUT (Cao & Wang) trades
// per-access exchanges for three fixed batched round trips; it requires
// Sum scoring over non-negative scores. TPUTA is its adaptive
// refinement: the phase-2 threshold budget is reshaped from the phase-1
// boundary scores, so lists with nothing to contribute hand their share
// to the dense ones and the aggregate scan never deepens.
// DistResult.Stats reports messages, response payload, protocol rounds,
// per-owner traffic and the transport's wall-clock.
//
// # Sessions and transports
//
// Every distributed run executes inside its own query session: a unique
// session ID, carried in every message, keys all owner-side state (seen
// positions, scan cursors, access tallies). Owners therefore serve any
// number of concurrent originators — N goroutines querying one Cluster
// produce answers and accounting bit-identical to running them serially
// — and a canceled ctx aborts a run at per-exchange granularity while
// releasing its owner-side session.
//
// The protocols are pure originator logic over internal/transport's
// message vocabulary, so one protocol runs unchanged over three
// backends with bit-identical answers, traffic accounting and access
// counts — only the wall-clock measure differs:
//
//	backend     delivery                    rounds cost (wall-clock)
//	Loopback    in-process, sequential      zero (simulation default)
//	Concurrent  per-owner goroutines        max over owners per fan-out,
//	            + injectable latency model  virtual clock, no sleeping
//	HTTP        real owner servers,         real network time
//	            binary or JSON wire
//
// Under the Concurrent backend a protocol round costs its slowest
// owner, not the sum of all owners, which is what makes the round
// structure measurable: TPUT/TPUTA finish in three fan-outs at any
// latency, TA/BPA pay a round-trip chain per sorted depth, and BPA2
// pays fewer, probe-chained rounds (BenchmarkTransport sweeps this at
// 1ms/10ms/50ms per exchange; BenchmarkConcurrentSessions measures
// queries/sec as concurrent originators grow).
//
// # Round coalescing and the wire codecs
//
// The transport hot path is coalesced per round: all the logical
// messages a protocol round sends to one owner travel as a single
// batched exchange for that owner, executed atomically against the
// query's session, with responses in request order. TA and BPA, which
// trigger m-1 lookups per owner per round, collapse from m round-trips
// per round to two; BPA2 and TPUT already address each owner at most
// once per fan-out and are untouched. Batching is per-owner, per-round,
// single-session wire mechanics: DistStats.Messages, Payload and
// PerOwner keep charging the logical messages (the paper's cost
// metrics), while DistStats.Exchanges counts the wire round-trips a
// deployment actually pays.
//
// On the HTTP backend each exchange travels in one of two codecs,
// negotiated at dial time via Content-Type: a length-prefixed
// little-endian binary encoding (the default whenever every owner
// advertises it in the handshake, and the only wire that carries the
// +Inf best-position piggyback natively), with JSON retained as the
// fallback for old owners and for debugging (Cluster.SetWire,
// topk-query -wire json). Measured on the seeded uniform workload
// (n=2000, m=4, k=10), whole-query wire traffic shrinks by 58-73%:
//
//	protocol   JSON bytes/query   binary bytes/query   reduction
//	dist-ta        438,370            141,984             68%
//	dist-bpa       583,270            156,672             73%
//	dist-bpa2      289,880            121,024             58%
//	tput           244,164             72,412             70%
//
// (BenchmarkCodec regenerates these per protocol; answers and all
// accounting are bit-identical across codecs and backends — the parity
// suite pins both wires.)
//
// The HTTP backend is a real cluster: cmd/topk-owner serves one list
// per process, and DialCluster (or topk-query -owners) drives the same
// protocols against it:
//
//	topk-owner -gen uniform -n 10000 -m 2 -seed 7 -list 0 -addr localhost:9001 &
//	topk-owner -gen uniform -n 10000 -m 2 -seed 7 -list 1 -addr localhost:9002 &
//	topk-query -owners localhost:9001,localhost:9002 -k 10 -protocol bpa2
//
// returns the same top-k as the centralized run on the same data, and
// any number of such originators may run at once over one pooled HTTP
// client (connections are reused across sessions rather than
// re-handshaken per exchange). The client bounds every request with a
// per-request timeout and retries once on transient owner failures
// (connection errors, 5xx), naming the failing owner in the error;
// exchanges that advance an owner-side cursor (BPA2's probe, TPUT's
// phase-2 scan, or any batch containing one) are never replayed — a
// retry there could silently skip list entries, so those fail fast
// instead. Owners evict sessions left idle past a TTL (topk-owner
// -session-ttl, default 15m) so crashed originators cannot starve the
// per-owner session limit; evictions are reported in /stats.
// cmd/topk-serve -owners exposes a remote cluster through the /v1/dist
// JSON endpoint, one session per API request.
//
// # Replica topologies, routing policies and mid-query failover
//
// A single live owner per list makes every owner a single point of
// failure. ClusterConfig declares a replica-aware topology instead —
// per-list replica sets, a routing policy, the health-check cadence and
// the per-request timeout/retry budget — dialed with DialClusterConfig;
// ParseTopology accepts the CLI syntax (replicas |-separated within a
// list, lists comma-separated), and DialCluster remains the flat
// one-replica-per-list shape. Every replica of a list serves the same
// list of the same database (validated at dial time); a background
// prober polls replica health and an EWMA of round-trip latency.
//
// The routing policy picks the replica for each exchange:
//
//	policy       stateless exchanges route to          default
//	primary      lowest-index healthy replica          yes
//	round-robin  healthy replicas, rotating
//	fastest      healthy replica with lowest EWMA
//
// Query sessions open on every replica of every list, so failover never
// loses session identity; cursor-bearing ("sessionful") traffic pins
// each session to one replica per list, chosen by the policy. What a
// replica crash does mid-query depends on what the traffic was and on
// the recovery machinery below:
//
//	traffic                        state touched     on replica failure
//	sorted, lookup, fetch          none              fails over to a sibling;
//	  (TA, BPA, TPUT phase 1+3)                      query completes, answers
//	                                                 and accounting unchanged
//	mark, topk (replayable but     tracker, depth    session handoff: the pin's
//	  cursor-bearing)                                mirrored state resumes on a
//	                                                 sibling, the exchange is
//	                                                 re-sent there
//	probe, above (non-replayable)  tracker, depth    session handoff; safe even
//	  (BPA2, TPUT phase 2)                           without replayability — the
//	                                                 mirror is only ever behind
//	                                                 by the failed exchange
//
// With no sibling left to hand off to (or handoff disabled), sessionful
// failures surface as *OwnerFailedError naming the list and replica,
// and the restart policy decides whether the query is transparently
// rerun on the survivors.
//
// # Recovery: session handoff and automatic restart
//
// Two mechanisms together make replica death invisible to callers —
// zero failed queries as long as each list keeps one live replica.
//
// Session handoff (owner side, always on unless
// ClusterConfig.DisableHandoff): after every successful sessionful
// exchange the client synchronously mirrors the pinned replica's state
// delta — positions newly seen, scan depth — to one sibling replica of
// that list, over uncharged control-plane endpoints (POST /session/sync,
// GET /session/state). The mirror is therefore always exactly the pin's
// state as of the last exchange that succeeded. If the pin dies, the
// session re-pins to the mirror and resumes; because the failed exchange
// was never applied-and-acknowledged anywhere the client kept, no cursor
// advances twice and no list entry is skipped, even for the
// non-replayable probe/above traffic. A fresh mirror is then promoted
// from the remaining siblings by copying the new pin's full state.
//
// Query restart (originator side, opt-in): ClusterConfig.Restart — or
// per-query WithRestart — reruns a query that still failed (for
// example, a list whose every replica died and came back, or a flat
// single-replica topology). RestartFailed reruns only replica-failure
// errors (*OwnerFailedError anywhere in the chain); RestartAlways also
// reruns plain transport errors; each rerun is a fresh session on the
// surviving replicas, bounded by MaxRestarts (default
// DefaultMaxRestarts). When the budget runs out the last error is
// wrapped in *RestartExhaustedError, still naming the failing list and
// replica. WithTimeout bounds the whole attempt chain.
//
// Recovery never perturbs the paper's cost accounting. DistStats is
// split into Net — the primary metrics, bit-identical to an undisturbed
// single-owner run whatever handoffs or restarts happened, because the
// client-side ledger charges each logical access exactly once and
// restarted attempts report only the final run — and Recovery, which
// tallies Restarts, Handoffs and FailedReplicas for the run. The
// flat DistStats fields (Messages, Payload, Rounds, Exchanges,
// PerOwner, TotalAccesses, Elapsed) are deprecated mirrors of Net kept
// for one release; read Net.* (and Recovery) instead. /v1/dist reports
// the same split as "net" and "recovery" JSON blocks and accepts a
// restart= query parameter; topk-query prints the recovery line under
// -verbose, or whenever any recovery happened.
//
// Answers, Messages, Payload, Rounds and access counts stay
// bit-identical to a single-owner run whatever routed, failed over,
// handed off or restarted — the parity suite pins this over replicated
// topologies with a replica killed at every possible instant of every
// protocol, under every routing policy. A runnable two-replica cluster
// (list 0 doubly served, same data everywhere):
//
//	topk-owner -gen uniform -n 10000 -m 2 -seed 7 -list 0 -replica a -addr localhost:9001 &
//	topk-owner -gen uniform -n 10000 -m 2 -seed 7 -list 0 -replica b -addr localhost:9101 &
//	topk-owner -gen uniform -n 10000 -m 2 -seed 7 -list 1 -replica a -addr localhost:9002 &
//	topk-query -owners 'localhost:9001|localhost:9101,localhost:9002' \
//	    -k 10 -policy fastest -restart failed -verbose
//
// Kill the localhost:9001 owner mid-run — with `kill` at any instant —
// and the query completes on localhost:9101 with identical answers and
// identical network accounting; the recovery line reports the handoff
// (e.g. "recovery: restarts=0 handoffs=1 failed-replicas=1"), -verbose
// prints each replica's health verdict, EWMA latency and failover
// tallies (Cluster.Health programmatically), and each owner advertises
// its -replica label in /stats.
//
// # Hardening: faults, deadlines, breakers and admission control
//
// Failover and handoff assume failures announce themselves — a closed
// connection, a 5xx. A real network also delays, stalls, partitions,
// tears frames mid-byte and flips bits, and a real owner is sometimes
// merely overloaded rather than dead. The client earns its answers
// through all of it; per fault, the defense and what the caller sees:
//
//	fault on the wire         defense                              caller sees
//	connection drop, 5xx      full-jitter exponential backoff      nothing; answers and
//	                          (ClusterConfig.BackoffBase/Cap),     accounting unchanged
//	                          then failover / handoff
//	torn or bit-flipped       end-to-end frame checksum: every     nothing; the corrupt frame
//	frame                     /rpc response carries the CRC-32     is a typed transient error,
//	                          of its body (X-Topk-Frame-Crc),      re-fetched like a drop —
//	                          verified before decoding             never a silently wrong score
//	owner hang or stall       per-attempt timeout, plus the        nothing, or the caller's own
//	                          deadline budget shipped on the       context error at its deadline
//	                          wire (X-Topk-Budget-Ms): owners
//	                          abandon work nobody waits for
//	flapping replica          per-replica circuit breaker: K       nothing; routing fences the
//	                          consecutive failures open it         replica, a half-open probe
//	                          (ClusterConfig.BreakerThreshold/     exchange readmits it after
//	                          BreakerCooldown), cooldown doubles   the cooldown
//	                          while probes keep failing
//	overloaded owner          admission control (topk-owner        nothing; the shed is waited
//	                          -max-inflight): exchanges beyond     out as backpressure — no
//	                          the bound are shed with 429 +        health or breaker penalty,
//	                          X-Topk-Retry-After-Ms BEFORE any     tallied in
//	                          work, so a re-send is always safe    Recovery.Backpressure
//
// Third-party clients of the owner wire get the same contract: a 429
// carries X-Topk-Retry-After-Ms (milliseconds to wait; the owner has
// contractually run none of the request, so re-sending is safe for
// every message kind, cursor-bearing or not); requests may carry
// X-Topk-Budget-Ms (relative milliseconds the client will keep
// waiting); data-plane responses carry X-Topk-Frame-Crc (IEEE CRC-32
// of the body, lower-case hex) to verify before decoding.
//
// The fault injector itself ships in the tree (internal/chaos): a
// seeded, deterministic schedule of delays, drops, stalls, truncated
// frames, flipped bits, spurious 5xx and replica partitions, insertable
// on either side of the wire. Owners arm it with -chaos:
//
//	topk-owner -gen uniform -n 10000 -m 2 -seed 7 -list 0 \
//	    -chaos 'seed=42,all=0.02' -addr localhost:9001
//
// and the chaos acceptance suite (TestChaosParity, plus the opt-in
// TOPK_CHAOS_SOAK=1 endurance run CI executes under the race detector)
// drives every protocol under every routing policy through it: each
// query must either complete bit-identically to the undisturbed
// loopback reference or fail with a typed error before its deadline —
// never a hang, never a leaked goroutine, never a silently wrong
// answer.
//
// Both daemons shut down gracefully on SIGTERM: the listener closes at
// once, in-flight requests get -drain-timeout (default 10s) to finish,
// then sessions and cluster connections are released; a second signal
// kills. topk-owner -stripe also takes -verify, which checks every
// stripe checksum end to end and exits instead of serving — the
// pre-flight for a file restored from backup.
//
// RunDHT layers the same protocols over a simulated Chord-style DHT
// (internal/dht): each list is placed at the overlay node owning its
// key's hash, and every protocol message is priced in routing hops under
// either a cached-connection or a fully-routed cost model, driven by the
// per-owner message counts the protocols report.
//
// # Observability
//
// The cluster is observable at three grains — process metrics, per-query
// traces and per-daemon profiles — none of which may perturb the paper's
// accounting: every parity suite runs with metrics on, and the traced
// run of a query is asserted bit-identical (answers, Net, accesses) to
// the untraced one.
//
// Endpoints:
//
//	GET /metrics              topk-owner, topk-serve   Prometheus text exposition (?format=json for a JSON snapshot)
//	GET /v1/health            topk-serve (cluster mode) Cluster.Health per replica: health verdict, breaker state, EWMA latency, failure/failover tallies
//	GET /v1/dist?trace=1      topk-serve               per-exchange span trace in the "trace" JSON block
//	/debug/pprof/*            topk-owner, topk-serve   opt-in via -pprof addr (separate listener, e.g. -pprof localhost:6060)
//
// Metrics come from internal/obs, a dependency-free registry of atomic
// counters, gauges and fixed-bucket histograms shared process-wide
// (obs.Default); handles are resolved once at init or dial, so an
// instrumented exchange costs a few atomic adds, and
// obs.Default.SetEnabled(false) freezes every handle behind one atomic
// load (BenchmarkObservabilityOverhead gates the enabled cost under 5%
// of originator throughput; measured within noise). The catalogue, all
// prefixed topk_ (full details atop internal/transport/metrics.go):
//
//	topk_owner_exchanges_total{kind} / _exchange_seconds{kind} / _exchange_errors_total{kind}
//	topk_owner_wire_bytes_total{codec,direction}
//	topk_owner_sessions_open / _opened_total / _closed_total / _evicted_total / _session_syncs_total
//	topk_client_exchanges_total{kind} / _exchange_seconds{kind} / _exchange_errors_total{kind}
//	topk_client_wire_bytes_total{codec,direction} / _exchange_bytes
//	topk_client_retries_total / _failovers_total / _handoffs_total / _mirror_promotions_total
//	topk_client_replica_failures_total / _health_transitions_total{to}
//	topk_client_replica_healthy{list,replica} / _probe_ewma_seconds{list,replica}
//	topk_client_sessions_open / _opened_total
//	topk_owner_inflight_exchanges / _shed_total / _deadline_abandoned_total
//	topk_client_breaker_open{list,replica} / _breaker_transitions_total{to} / _backpressure_waits_total
//	topk_dist_restarts_total
//
// go run ./internal/tools/promcheck URL validates a live scrape (CI does
// this against a freshly booted topk-owner).
//
// Tracing is per query and opt-in: WithTrace (or Options.Trace in
// internal/dist, trace=1 on /v1/dist, -trace on topk-query) records one
// span per wire exchange — round, owner, replica, URL, message kind,
// logical messages, request/response bytes, duration, and the recovery
// annotations (attempts, failover, handoff) — surfaced as
// DistStats.Trace. Against the runnable cluster above:
//
//	topk-query -owners 'localhost:9001|localhost:9101,localhost:9002' \
//	    -k 10 -protocol tput -trace
//
// prints the span table after the answers, one row per exchange —
// TPUT's three fixed rounds become topk/above/fetch spans; a failover or
// handoff absorbed mid-exchange shows up in the notes column:
//
//	trace (6 exchanges):
//	 seq  round  owner  replica  kind     msgs     req-B    resp-B        time  notes
//	   0      1      0        0  topk        1         9        45       143µs
//	   1      1      1        0  topk        1         9        45       302µs
//	   2      2      0        0  above       1        13     60429     3.535ms
//	   ...
//
// Both daemons log lifecycle events (session open/close/evict, health
// transitions, handoff promotions) via log/slog behind -log-level
// (debug, info, warn, error, off); -pprof addr serves the standard
// net/http/pprof mux on a separate listener for CPU and heap profiles
// under load.
//
// # Storage
//
// Four interchangeable ways to put a database in front of the
// algorithms; owners accept each behind exactly one flag, and every
// input yields bit-identical answers and access counts:
//
//	-gen     generate in process      RAM-resident   deterministic per (spec, seed); no file at all
//	-csv     CSV column form          RAM-resident   interop with external tools (topk-gen -csv writes it)
//	-db      binary format            RAM-resident   compact, CRC-checked; loaded in one pass with bounded scratch
//	-stripe  striped columnar store   disk-resident  served from the file through a bounded cache; warm restarts
//
// The stripe format (internal/store/stripe) cuts each sorted list into
// fixed-capacity columnar stripes — entries by position, with per-stripe
// min/max score fences — plus id→position pages for random access, all
// indexed by a footer. Opening reads only the footer: data blocks are
// fetched on demand with pread into an LRU cache whose byte budget is
// -stripe-cache (default 64 MiB). The budget is a hard ceiling on the
// accounted decoded bytes resident — insertion evicts first, and a block
// larger than the whole budget is served uncached — so an owner's memory
// stays bounded no matter how large its lists are. Score fences let a
// threshold seek touch one stripe instead of scanning; none of this
// changes what an algorithm is charged, which is how the parity suites
// can hold disk-backed runs bit-identical to RAM ones.
//
// A warm-restarting owner, end to end:
//
//	topk-gen -kind uniform -n 1000000 -m 4 -stripe -o lists.stripe
//	topk-owner -stripe lists.stripe -stripe-cache 33554432 -list 0 -addr localhost:9001
//	# ... kill it; restarting reopens the footer only — no reload,
//	# first queries repopulate the cache on demand:
//	topk-owner -stripe lists.stripe -stripe-cache 33554432 -list 0 -addr localhost:9001
//
// Cache traffic joins the metrics catalogue below:
//
//	topk_stripe_cache_hits_total / _misses_total / _evictions_total
//	topk_stripe_cache_resident_bytes   (gauge; summed over open stripe DBs, never above the summed budgets)
//
// # Live: continuous top-k over streaming updates
//
// The live plane turns the one-shot distributed query into a standing
// one: owners accept score updates, a coordinator keeps each registered
// query's top-k current, and subscribers are pushed a delta whenever
// the ranking (membership, order, or any member's score) changes.
//
// Updates travel as a fifth wire kind next to topk/above/fetch/sorted.
// An owner started with -mutable (RAM-backed inputs only; -stripe
// owners are read-only) applies batches of per-item score deltas to
// its sorted list. Each batch carries a feed name and a caller-owned,
// strictly increasing sequence number; an owner acks seq <= its last
// applied one without re-applying, so retrying an Apply after a lost
// response is idempotent end to end — the rule that keeps at-least-once
// delivery from double-counting a delta. The ack reports the owner's
// new list version (also on /v1/info and /metrics) and which standing
// queries crossed their notification filter.
//
// The coordinator (internal/live, served by topk-serve -live) avoids
// re-running the query on every update with Mäcker-style owner-side
// filters. After each evaluation it runs with k+1 internally, takes the
// aggregate gap g between ranks k and k+1, and arms every owner with
// the current top-k watch set and a slack of g/m (sum-like scorings;
// other scorings get slack 0, which is still sound, just never
// suppressive). An owner accumulates per-query, per-item drift and
// reports a crossing only when a watched member moved or an outsider's
// upward drift reached the slack — every update that cannot have
// changed the ranking is absorbed at the owner for the cost of the
// update message itself. Crossings trigger a distributed re-evaluation
// and filter re-arm; the Accounting counters (surfaced on
// /v1/live/stats) keep suppressed vs naive re-evaluation counts so the
// saving is measurable, and BenchmarkLive pins it (suppressed ingest is
// ~20x cheaper than the crossing path, 0 vs ~50 control messages per
// update). Chaos-tested: under seeded drops, 5xx, torn frames and
// flipped bits, retried Applys plus a final Refresh converge to the
// oracle ranking bit-identically, or fail with a typed error — never
// silently wrong.
//
// Subscribers attach over Server-Sent Events. A live cluster, end to
// end:
//
//	topk-gen -kind uniform -n 100000 -m 2 -seed 7 -o lists.topk
//	topk-owner -db lists.topk -list 0 -mutable -addr localhost:9001
//	topk-owner -db lists.topk -list 1 -mutable -addr localhost:9002
//	topk-serve -db lists.topk -owners localhost:9001,localhost:9002 -live -addr localhost:8080
//	topk-query -follow -serve http://localhost:8080 -query hot -k 10   # renders deltas as they arrive
//	curl -N 'localhost:8080/v1/live?k=10&query=hot'                    # same stream, raw SSE
//	curl -X POST localhost:8080/v1/update -d '{"feed":"trades","seq":1,
//	    "updates":[{"owner":0,"updates":[{"item":42,"delta":0.5}]},
//	               {"owner":1,"updates":[{"item":42,"delta":0.5}]}]}'
//
// GET /v1/live subscribes (parameters of /v1/dist plus query=name;
// subscribing to an unregistered name registers it), streaming a hello
// event, one snapshot delta, then a delta per ranking revision — items,
// entered/left/moved changes, and a monotonic revision counter. POST
// /v1/update ingests a feed batch and reports which queries
// re-evaluated vs suppressed; GET /v1/live/stats exposes the standing
// queries and the Accounting counters. In process, the same plane is
// Cluster.SendUpdate plus live.New / Coordinator.Register /
// Standing.Subscribe. Slow subscribers are dropped (channel closed)
// rather than allowed to stall the push path.
//
// The live families join the metrics catalogue:
//
//	topk_live_updates_applied_total / _update_batches_total
//	topk_live_reevaluations_total / _notifications_total / _suppressed_total
//	topk_live_subscribers (gauge) / _subscribers_dropped_total
//	topk_live_push_seconds (histogram)
//
// # Development
//
// The module has no dependencies outside the standard library. CI (see
// .github/workflows/ci.yml) runs gofmt, go vet, go build and go test
// over the whole tree, the race detector over internal/transport,
// internal/dist, internal/dht and internal/store (which covers the
// concurrent-session and cancellation suites), the named chaos
// hardening steps (the seeded fault-injection acceptance suite plus a
// 30-second soak, both under -race), the named live-plane suite under
// -race, and one iteration of every benchmark
// (go test -bench=. -benchtime=1x -run='^$' ./...) so the
// figure-regeneration benchmarks cannot silently rot.
//
// Beyond one-shot queries: Query.Parallel executes TA/BPA/BPA2 with one
// goroutine per list owner (identical answers and counts); Query.Sortable
// handles sources that answer lookups but cannot be scanned (the TAz and
// BPAz variants); NewMonitor maintains a continuous top-k over
// sliding-window score streams with ranking-change detection; and
// cmd/topk-serve exposes a database over an HTTP JSON API.
package topk
