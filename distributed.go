package topk

import (
	"fmt"

	"topk/internal/bestpos"
	"topk/internal/dist"
	"topk/internal/list"
)

// Protocol selects a distributed top-k protocol for RunDistributed.
type Protocol uint8

const (
	// DistBPA2 is the paper's Section 5 protocol: list owners manage
	// their own best positions; the originator keeps only the answer set
	// and m best-position scores. The default.
	DistBPA2 Protocol = iota
	// DistBPA ships seen positions to the query originator (the design
	// the paper improves on in Section 5).
	DistBPA
	// DistTA is the Threshold Algorithm run over the network.
	DistTA
	// TPUT is the Three Phase Uniform Threshold baseline (Cao & Wang,
	// PODC 2004); requires Sum scoring and non-negative scores.
	TPUT
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case DistBPA2:
		return "dist-bpa2"
	case DistBPA:
		return "dist-bpa"
	case DistTA:
		return "dist-ta"
	case TPUT:
		return "tput"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// Protocols lists the available distributed protocols.
func Protocols() []Protocol { return []Protocol{DistBPA2, DistBPA, DistTA, TPUT} }

// DistStats reports the simulated network profile of a distributed run.
type DistStats struct {
	// Messages counts point-to-point messages (a request/response
	// exchange is two).
	Messages int64
	// Payload counts scalar values carried in responses.
	Payload int64
	// Rounds counts protocol rounds.
	Rounds int
	// TotalAccesses aggregates the list accesses owners performed.
	TotalAccesses int64
}

// DistResult is a completed distributed query.
type DistResult struct {
	Protocol Protocol
	Items    []ScoredItem
	Stats    DistStats
}

// RunDistributed executes the query in the simulated distributed setting
// of the paper: one owner node per list, a query originator, and message
// accounting. The simulation is deterministic and in-process; Stats
// reports what would travel over a real network.
func (db *Database) RunDistributed(q Query, protocol Protocol) (*DistResult, error) {
	if q.K < 1 || q.K > db.N() {
		return nil, fmt.Errorf("topk: k=%d out of range [1,%d]", q.K, db.N())
	}
	scoring := q.Scoring
	if scoring == nil {
		scoring = Sum()
	}
	opts := dist.Options{
		K:       q.K,
		Scoring: adaptScoring(scoring),
		Tracker: bestpos.Kind(q.Tracker),
	}
	var run func(*list.Database, dist.Options) (*dist.Result, error)
	switch protocol {
	case DistBPA2:
		run = dist.BPA2
	case DistBPA:
		run = dist.BPA
	case DistTA:
		run = dist.TA
	case TPUT:
		run = dist.TPUT
	default:
		return nil, fmt.Errorf("topk: unknown protocol %d", uint8(protocol))
	}
	res, err := run(db.db, opts)
	if err != nil {
		return nil, err
	}
	out := &DistResult{Protocol: protocol}
	out.Items = make([]ScoredItem, len(res.Items))
	for i, it := range res.Items {
		out.Items[i] = ScoredItem{Item: Item(it.Item), Name: db.NameOf(Item(it.Item)), Score: it.Score}
	}
	out.Stats = DistStats{
		Messages:      res.Net.Messages,
		Payload:       res.Net.Payload,
		Rounds:        res.Net.Rounds,
		TotalAccesses: res.Accesses.Total(),
	}
	return out, nil
}
