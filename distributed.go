package topk

import (
	"context"
	"fmt"
	"strings"
	"time"

	"topk/internal/bestpos"
	"topk/internal/dist"
	"topk/internal/transport"
)

// Protocol selects a distributed top-k protocol for RunDistributed.
type Protocol uint8

const (
	// DistBPA2 is the paper's Section 5 protocol: list owners manage
	// their own best positions; the originator keeps only the answer set
	// and m best-position scores. The default.
	DistBPA2 Protocol = iota
	// DistBPA ships seen positions to the query originator (the design
	// the paper improves on in Section 5).
	DistBPA
	// DistTA is the Threshold Algorithm run over the network.
	DistTA
	// TPUT is the Three Phase Uniform Threshold baseline (Cao & Wang,
	// PODC 2004); requires Sum scoring and non-negative scores.
	TPUT
	// TPUTA is TPUT with the phase-2 threshold split adaptively across
	// the lists from the phase-1 boundary scores, so cold lists hand
	// their scan budget to hot ones. Same requirements as TPUT.
	TPUTA
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case DistBPA2:
		return "dist-bpa2"
	case DistBPA:
		return "dist-bpa"
	case DistTA:
		return "dist-ta"
	case TPUT:
		return "tput"
	case TPUTA:
		return "tput-a"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// Protocols lists the available distributed protocols.
func Protocols() []Protocol { return []Protocol{DistBPA2, DistBPA, DistTA, TPUT, TPUTA} }

// ParseProtocol resolves a protocol name ("bpa2", "dist-bpa2", "tput-a",
// ...) case-insensitively, accepting the names String returns with or
// without the "dist-" prefix.
func ParseProtocol(name string) (Protocol, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "bpa2", "dist-bpa2":
		return DistBPA2, nil
	case "bpa", "dist-bpa":
		return DistBPA, nil
	case "ta", "dist-ta":
		return DistTA, nil
	case "tput":
		return TPUT, nil
	case "tput-a", "tputa":
		return TPUTA, nil
	default:
		return 0, fmt.Errorf("topk: unknown protocol %q (want bpa2, bpa, ta, tput or tput-a)", name)
	}
}

// DistStats reports the network profile of a distributed run.
type DistStats struct {
	// Messages counts point-to-point logical messages (a request/response
	// exchange is two). Unaffected by wire coalescing — it is the paper's
	// cost metric.
	Messages int64
	// Payload counts scalar values carried in responses plus
	// variable-length request batches.
	Payload int64
	// Rounds counts protocol rounds.
	Rounds int
	// Exchanges counts wire round-trips after per-round coalescing: a
	// round's fan-out to one owner travels as one batched exchange, so
	// this is what a latency-bound deployment pays.
	Exchanges int64
	// PerOwner[i] counts the messages exchanged with the owner of list
	// i, in both directions.
	PerOwner []int64
	// TotalAccesses aggregates the list accesses owners performed.
	TotalAccesses int64
	// Elapsed is the transport's wall-clock measure of the run: zero for
	// the in-process simulation, real time for a cluster run.
	Elapsed time.Duration
}

// DistResult is a completed distributed query.
type DistResult struct {
	Protocol Protocol
	Items    []ScoredItem
	Stats    DistStats
}

// runnerFor maps a protocol to its transport-level runner.
func runnerFor(protocol Protocol) (func(context.Context, transport.Transport, dist.Options) (*dist.Result, error), error) {
	switch protocol {
	case DistBPA2:
		return dist.BPA2Over, nil
	case DistBPA:
		return dist.BPAOver, nil
	case DistTA:
		return dist.TAOver, nil
	case TPUT:
		return dist.TPUTOver, nil
	case TPUTA:
		return dist.TPUTAOver, nil
	default:
		return nil, fmt.Errorf("topk: unknown protocol %d", uint8(protocol))
	}
}

// runOver executes a protocol over a transport and adapts the result.
// name resolves item IDs to display names (nil leaves names empty —
// a cluster originator holds no dictionary).
func runOver(ctx context.Context, t transport.Transport, q Query, protocol Protocol, name func(Item) string) (*DistResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.K < 1 || q.K > t.N() {
		return nil, fmt.Errorf("topk: k=%d out of range [1,%d]", q.K, t.N())
	}
	scoring := q.Scoring
	if scoring == nil {
		scoring = Sum()
	}
	run, err := runnerFor(protocol)
	if err != nil {
		return nil, err
	}
	res, err := run(ctx, t, dist.Options{
		K:       q.K,
		Scoring: adaptScoring(scoring),
		Tracker: bestpos.Kind(q.Tracker),
	})
	if err != nil {
		return nil, err
	}
	out := &DistResult{Protocol: protocol}
	out.Items = make([]ScoredItem, len(res.Items))
	for i, it := range res.Items {
		si := ScoredItem{Item: Item(it.Item), Score: it.Score}
		if name != nil {
			si.Name = name(si.Item)
		}
		out.Items[i] = si
	}
	out.Stats = DistStats{
		Messages:      res.Net.Messages,
		Payload:       res.Net.Payload,
		Rounds:        res.Net.Rounds,
		Exchanges:     res.Net.Exchanges,
		PerOwner:      res.Net.PerOwner,
		TotalAccesses: res.Accesses.Total(),
		Elapsed:       res.Elapsed,
	}
	return out, nil
}

// ExecDistributed executes the query in the simulated distributed
// setting of the paper: one owner node per list, a query originator, and
// message accounting. The simulation is deterministic and in-process;
// Stats reports what would travel over a real network. ctx is honored at
// per-exchange granularity. For real HTTP owners see DialCluster.
func (db *Database) ExecDistributed(ctx context.Context, q Query, protocol Protocol) (*DistResult, error) {
	t, err := transport.NewLoopback(db.db)
	if err != nil {
		return nil, err
	}
	return runOver(ctx, t, q, protocol, db.NameOf)
}

// RunDistributed executes the query in the simulated distributed setting
// without a context.
//
// Deprecated: use ExecDistributed, which adds cancellation and
// deadlines; RunDistributed is equivalent to
// ExecDistributed(context.Background(), q, protocol).
func (db *Database) RunDistributed(q Query, protocol Protocol) (*DistResult, error) {
	return db.ExecDistributed(context.Background(), q, protocol)
}

// Cluster is a connection to real list owners serving the distributed
// protocols over HTTP — one owner process per list, each started with
// cmd/topk-owner. A Cluster is safe for concurrent use: every Exec opens
// its own owner-side query session (seen positions, scan cursors, access
// tallies keyed by a session ID carried in every message), so any number
// of originator goroutines can query the same owners at once with
// answers and accounting identical to running them serially.
type Cluster struct {
	t *transport.HTTPClient
}

// DialCluster connects to the owner servers; owners[i] ("host:port" or a
// full URL) must serve list i. Every owner must agree on the list length
// and the number of lists — Dial validates the cluster before any query
// runs. All sessions share one pooled HTTP client with enough warm
// connections per owner for many concurrent originators, so exchanges
// reuse connections instead of re-handshaking. Every request to an owner
// is bounded by a per-request timeout and — when replaying it cannot
// change what the query observes — retried once on transient failures
// (connection errors, 5xx), with the failing owner's index surfaced in
// the returned error.
//
// The dial handshake also negotiates the wire codec: the compact binary
// codec when every owner advertises it, JSON otherwise (see SetWire).
func DialCluster(owners []string) (*Cluster, error) {
	t, err := transport.Dial(owners, nil)
	if err != nil {
		return nil, err
	}
	return &Cluster{t: t}, nil
}

// SetWire overrides the cluster's negotiated wire codec: "auto" (the
// default — binary when every owner advertises it), "json" (the
// debugging fallback), or "binary" (forced). Call it before Exec;
// answers and accounting are identical either way, only bytes on the
// wire differ.
func (c *Cluster) SetWire(format string) error {
	switch format {
	case "", "auto":
		c.t.SetWireFormat(transport.WireAuto)
	case "json":
		c.t.SetWireFormat(transport.WireJSON)
	case "binary", "bin":
		c.t.SetWireFormat(transport.WireBinary)
	default:
		return fmt.Errorf("topk: unknown wire format %q (want auto, json or binary)", format)
	}
	return nil
}

// N returns the shared list length of the cluster.
func (c *Cluster) N() int { return c.t.N() }

// M returns the number of owners (lists).
func (c *Cluster) M() int { return c.t.M() }

// Exec executes the query against the cluster's owners inside its own
// query session. The answers and the Stats accounting are identical to
// the in-process Database.ExecDistributed on the same data — the
// protocols cannot tell the backends apart — but Stats.Elapsed is real
// network time. ctx cancels or bounds the run at per-exchange
// granularity; the owner-side session is released either way. Item
// names are left empty: the originator holds no dictionary.
func (c *Cluster) Exec(ctx context.Context, q Query, protocol Protocol) (*DistResult, error) {
	return runOver(ctx, c.t, q, protocol, nil)
}

// RunDistributed executes the query against the cluster without a
// context.
//
// Deprecated: use Exec, which adds cancellation and deadlines;
// RunDistributed is equivalent to Exec(context.Background(), q,
// protocol).
func (c *Cluster) RunDistributed(q Query, protocol Protocol) (*DistResult, error) {
	return c.Exec(context.Background(), q, protocol)
}

// Close releases the cluster's connections.
func (c *Cluster) Close() error { return c.t.Close() }
