package topk

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"topk/internal/bestpos"
	"topk/internal/dist"
	"topk/internal/list"
	"topk/internal/transport"
)

// Protocol selects a distributed top-k protocol for RunDistributed.
type Protocol uint8

const (
	// DistBPA2 is the paper's Section 5 protocol: list owners manage
	// their own best positions; the originator keeps only the answer set
	// and m best-position scores. The default.
	DistBPA2 Protocol = iota
	// DistBPA ships seen positions to the query originator (the design
	// the paper improves on in Section 5).
	DistBPA
	// DistTA is the Threshold Algorithm run over the network.
	DistTA
	// TPUT is the Three Phase Uniform Threshold baseline (Cao & Wang,
	// PODC 2004); requires Sum scoring and non-negative scores.
	TPUT
	// TPUTA is TPUT with the phase-2 threshold split adaptively across
	// the lists from the phase-1 boundary scores, so cold lists hand
	// their scan budget to hot ones. Same requirements as TPUT.
	TPUTA
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case DistBPA2:
		return "dist-bpa2"
	case DistBPA:
		return "dist-bpa"
	case DistTA:
		return "dist-ta"
	case TPUT:
		return "tput"
	case TPUTA:
		return "tput-a"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// Protocols lists the available distributed protocols.
func Protocols() []Protocol { return []Protocol{DistBPA2, DistBPA, DistTA, TPUT, TPUTA} }

// ParseProtocol resolves a protocol name ("bpa2", "dist-bpa2", "tput-a",
// ...) case-insensitively, accepting the names String returns with or
// without the "dist-" prefix — so every String() output parses back,
// including "dist-tput".
func ParseProtocol(name string) (Protocol, error) {
	cleaned := strings.TrimPrefix(strings.ToLower(strings.TrimSpace(name)), "dist-")
	switch cleaned {
	case "bpa2":
		return DistBPA2, nil
	case "bpa":
		return DistBPA, nil
	case "ta":
		return DistTA, nil
	case "tput":
		return TPUT, nil
	case "tput-a", "tputa":
		return TPUTA, nil
	default:
		return 0, fmt.Errorf("topk: unknown protocol %q (want bpa2, bpa, ta, tput or tput-a)", name)
	}
}

// NetStats is the network profile of a distributed run — the paper's
// cost metrics. It describes the protocol, not the outages the run
// outlived: a query that survived replica deaths via handoff or
// restart reports the same NetStats as an undisturbed run (see
// DistStats.Recovery for the disturbance).
type NetStats struct {
	// Messages counts point-to-point logical messages (a request/response
	// exchange is two). Unaffected by wire coalescing — it is the paper's
	// cost metric.
	Messages int64
	// Payload counts scalar values carried in responses plus
	// variable-length request batches.
	Payload int64
	// Rounds counts protocol rounds.
	Rounds int
	// Exchanges counts wire round-trips after per-round coalescing: a
	// round's fan-out to one owner travels as one batched exchange, so
	// this is what a latency-bound deployment pays.
	Exchanges int64
	// PerOwner[i] counts the messages exchanged with the owner of list
	// i, in both directions.
	PerOwner []int64
	// TotalAccesses aggregates the list accesses owners performed.
	TotalAccesses int64
	// Elapsed is the transport's wall-clock measure of the run: zero for
	// the in-process simulation, real time for a cluster run.
	Elapsed time.Duration
}

// RecoveryStats tallies the failures a run absorbed without failing
// the query. All-zero on an undisturbed run. Kept apart from NetStats
// on purpose: recovery never perturbs the primary accounting, so a
// killed-and-recovered query reports NetStats (and answers) identical
// to an undisturbed one, with the disturbance recorded here.
type RecoveryStats struct {
	// Restarts counts full protocol reruns the restart policy spent
	// before the query completed (see ClusterConfig.Restart).
	Restarts int
	// Handoffs counts pinned-session promotions to a synced sibling
	// replica performed mid-protocol after a pinned replica died.
	Handoffs int
	// FailedReplicas counts distinct replicas that failed during the
	// query, including replicas that failed attempts a restart
	// abandoned.
	FailedReplicas int
	// Backpressure counts exchanges an overloaded owner shed with a
	// typed retry-after answer that the client absorbed by waiting and
	// re-sending. Admission-control friction, not failure: a shed
	// exchange never perturbs answers or NetStats.
	Backpressure int
}

// TraceSpan is one wire exchange of a traced distributed run (see
// WithTrace): where it went, what it carried, and what it cost. Spans
// describe the execution, not the protocol: replica choice, byte counts
// and durations vary by backend and schedule, while the span count
// equals NetStats.Exchanges and the Msgs total equals half of
// NetStats.Messages (spans count request/response pairs once).
type TraceSpan struct {
	// Seq is the exchange's position in session order, from 0.
	Seq int `json:"seq"`
	// Round is the protocol round the exchange belongs to (1-based;
	// 0 for pre-round traffic).
	Round int `json:"round"`
	// Owner is the list whose owner served the exchange.
	Owner int `json:"owner"`
	// Replica is the serving replica's index within the list's replica
	// set; -1 for the in-process backends.
	Replica int `json:"replica"`
	// URL is the serving replica's base URL ("loopback" or "concurrent"
	// for the in-process backends).
	URL string `json:"url"`
	// Kind is the wire message kind ("sorted", "lookup", "probe", ...;
	// "batch" for a round-coalesced envelope).
	Kind string `json:"kind"`
	// Msgs counts the logical request messages carried: 1, or the batch
	// size for a coalesced exchange.
	Msgs int `json:"msgs"`
	// ReqBytes and RespBytes are the encoded wire sizes; zero for the
	// in-process backends, which never serialize.
	ReqBytes  int `json:"req_bytes"`
	RespBytes int `json:"resp_bytes"`
	// Duration is the exchange's round-trip time: real time over HTTP,
	// the latency model's virtual cost under the concurrent simulation.
	Duration time.Duration `json:"duration"`
	// Attempts counts wire attempts spent (1 plus retries).
	Attempts int `json:"attempts"`
	// FailedOver reports that a different replica than first targeted
	// answered; Handoff that the session re-pinned to a mirror during
	// the exchange.
	FailedOver bool `json:"failed_over,omitempty"`
	Handoff    bool `json:"handoff,omitempty"`
	// Err is the terminal failure, if the exchange had one.
	Err string `json:"err,omitempty"`
}

// traceSpansOf converts the transport's spans to the public type.
func traceSpansOf(spans []transport.Span) []TraceSpan {
	if spans == nil {
		return nil
	}
	out := make([]TraceSpan, len(spans))
	for i, sp := range spans {
		out[i] = TraceSpan{
			Seq: sp.Seq, Round: sp.Round, Owner: sp.Owner, Replica: sp.Replica,
			URL: sp.URL, Kind: string(sp.Kind), Msgs: sp.Msgs,
			ReqBytes: sp.ReqBytes, RespBytes: sp.RespBytes, Duration: sp.Duration,
			Attempts: sp.Attempts, FailedOver: sp.FailedOver, Handoff: sp.Handoff, Err: sp.Err,
		}
	}
	return out
}

// DistStats reports the accounting of a distributed run: the stable
// network profile in Net and the failures the run absorbed in
// Recovery. The flat fields mirror Net for callers written against the
// pre-recovery layout; they are deprecated and will be removed.
type DistStats struct {
	// Net is the network profile — identical to an undisturbed run even
	// when the query was restarted or handed off.
	Net NetStats
	// Recovery tallies the failures the run absorbed; all-zero when
	// nothing failed.
	Recovery RecoveryStats
	// Trace holds one span per wire exchange when the query ran with
	// WithTrace; nil otherwise. On a restarted query it covers the
	// completing attempt — the one Net accounts for.
	Trace []TraceSpan

	// Deprecated: read Net.Messages.
	Messages int64
	// Deprecated: read Net.Payload.
	Payload int64
	// Deprecated: read Net.Rounds.
	Rounds int
	// Deprecated: read Net.Exchanges.
	Exchanges int64
	// Deprecated: read Net.PerOwner (same backing array).
	PerOwner []int64
	// Deprecated: read Net.TotalAccesses.
	TotalAccesses int64
	// Deprecated: read Net.Elapsed.
	Elapsed time.Duration
}

// DistResult is a completed distributed query.
type DistResult struct {
	Protocol Protocol
	Items    []ScoredItem
	Stats    DistStats
}

// runnerFor maps a protocol to its transport-level runner.
func runnerFor(protocol Protocol) (func(context.Context, transport.Transport, dist.Options) (*dist.Result, error), error) {
	switch protocol {
	case DistBPA2:
		return dist.BPA2Over, nil
	case DistBPA:
		return dist.BPAOver, nil
	case DistTA:
		return dist.TAOver, nil
	case TPUT:
		return dist.TPUTOver, nil
	case TPUTA:
		return dist.TPUTAOver, nil
	default:
		return nil, fmt.Errorf("topk: unknown protocol %d", uint8(protocol))
	}
}

// distStatsOf adapts a dist result's accounting. PerOwner is copied:
// the runner's slice is live internal accounting state, and handing it
// out would let a caller's mutation corrupt anything else derived from
// the same run (the DHT pricing reads it too). The deprecated flat
// mirrors share that one copy with Net.PerOwner.
func distStatsOf(res *dist.Result) DistStats {
	net := NetStats{
		Messages:      res.Net.Messages,
		Payload:       res.Net.Payload,
		Rounds:        res.Net.Rounds,
		Exchanges:     res.Net.Exchanges,
		PerOwner:      append([]int64(nil), res.Net.PerOwner...),
		TotalAccesses: res.Accesses.Total(),
		Elapsed:       res.Elapsed,
	}
	return DistStats{
		Net: net,
		Recovery: RecoveryStats{
			Restarts:       res.Recovery.Restarts,
			Handoffs:       res.Recovery.Handoffs,
			FailedReplicas: res.Recovery.FailedReplicas,
			Backpressure:   res.Recovery.Backpressure,
		},
		Trace:         traceSpansOf(res.Trace),
		Messages:      net.Messages,
		Payload:       net.Payload,
		Rounds:        net.Rounds,
		Exchanges:     net.Exchanges,
		PerOwner:      net.PerOwner,
		TotalAccesses: net.TotalAccesses,
		Elapsed:       net.Elapsed,
	}
}

// OwnerFailedError reports a list owner replica failing mid-query on
// traffic the transport could not recover in place: BPA2's probes,
// TPUT's phase-2 scans and the other sessionful exchanges live on the
// cursors of exactly one pinned replica. Normally a pinned replica's
// death is absorbed by the session handoff — the session re-pins to a
// sibling that mirrors its state — so this error surfaces only when no
// synced sibling exists: a flat (unreplicated) list, handoff disabled
// (ClusterConfig.DisableHandoff), or every sibling already failed. The
// error names the list and replica; rerunning the query opens a fresh
// session pinned to a live replica — ClusterConfig.Restart (or
// WithRestart) does that rerun automatically. Stateless traffic (TA/BPA
// sorted reads and lookups, TPUT phase-3 fetches) never surfaces this —
// it fails over and the query completes.
type OwnerFailedError struct {
	// List is the list whose replica failed.
	List int
	// Replica is the failed replica's index within the list's replica
	// set.
	Replica int
	// URL is the failed replica's base URL.
	URL string
	// Err is the underlying failure.
	Err error
}

// Error names list, replica and URL.
func (e *OwnerFailedError) Error() string {
	return fmt.Sprintf("topk: owner %d replica %d (%s) failed mid-query: %v", e.List, e.Replica, e.URL, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *OwnerFailedError) Unwrap() error { return e.Err }

// liftOwnerFailure translates the transport layer's typed replica
// failure into the public OwnerFailedError, passing every other error
// through.
func liftOwnerFailure(err error) error {
	var ofe *transport.OwnerFailedError
	if errors.As(err, &ofe) {
		// Wrap the underlying cause, not the whole chain: the transport
		// error's message already names list, replica and URL, and the
		// public error repeats them.
		return &OwnerFailedError{List: ofe.List, Replica: ofe.Replica, URL: ofe.URL, Err: ofe.Err}
	}
	return err
}

// RestartPolicy decides when a cluster query that failed on a dying
// replica is automatically rerun from scratch on the surviving
// replicas (see ClusterConfig.Restart and WithRestart). Restart
// composes with the transport's session handoff: handoff repairs a
// run in place without losing protocol state; restart is the coarser
// fallback that throws the partial run away and reruns the whole
// protocol. Either way the completing run's answers and primary
// accounting (Stats.Net) are bit-identical to an undisturbed run;
// only Stats.Recovery records the disturbance.
type RestartPolicy uint8

const (
	// RestartOff never reruns: the first failure surfaces to the
	// caller unchanged. The default.
	RestartOff RestartPolicy = iota
	// RestartFailed reruns only queries that died with an
	// *OwnerFailedError — the failed-protocol case where a rerun on
	// the surviving replicas can succeed.
	RestartFailed
	// RestartAlways reruns on any non-cancellation error, including
	// plain transport errors from flat (unreplicated) topologies where
	// there is no failover machinery to classify the failure.
	RestartAlways
)

// String returns the policy name ParseRestartPolicy accepts.
func (p RestartPolicy) String() string {
	switch p {
	case RestartOff:
		return "off"
	case RestartFailed:
		return "failed"
	case RestartAlways:
		return "always"
	default:
		return fmt.Sprintf("RestartPolicy(%d)", uint8(p))
	}
}

// RestartPolicies lists the available restart policies.
func RestartPolicies() []RestartPolicy {
	return []RestartPolicy{RestartOff, RestartFailed, RestartAlways}
}

// ParseRestartPolicy resolves a restart policy name ("off", "failed",
// "always"), case-insensitively; "" is RestartOff.
func ParseRestartPolicy(name string) (RestartPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "off":
		return RestartOff, nil
	case "failed", "restart-failed", "failed-protocols":
		return RestartFailed, nil
	case "always":
		return RestartAlways, nil
	default:
		return 0, fmt.Errorf("topk: unknown restart policy %q (want off, failed or always)", name)
	}
}

// DefaultMaxRestarts is the rerun budget used when
// ClusterConfig.MaxRestarts (or WithMaxRestarts) is zero.
const DefaultMaxRestarts = 2

// RestartExhaustedError reports that a restart policy ran out of
// budget: every attempt failed and the policy was not allowed another.
// Err is the last attempt's failure — when the attempts died on a
// replica it wraps an *OwnerFailedError naming the list and replica.
type RestartExhaustedError struct {
	// Attempts is the total number of runs spent (1 + restarts).
	Attempts int
	// Err is the last attempt's error.
	Err error
}

// Error names the spent budget and the last failure.
func (e *RestartExhaustedError) Error() string {
	return fmt.Sprintf("topk: restart budget exhausted after %d attempts: %v", e.Attempts, e.Err)
}

// Unwrap exposes the last attempt's failure to errors.Is/As.
func (e *RestartExhaustedError) Unwrap() error { return e.Err }

// execSettings is the resolved per-Exec configuration: ClusterConfig
// defaults overridden by ExecOptions.
type execSettings struct {
	restart     RestartPolicy
	maxRestarts int
	timeout     time.Duration
	trace       bool
}

// ExecOption overrides a per-query execution setting of Cluster.Exec
// or Database.ExecDistributed; the cluster-level defaults come from
// ClusterConfig.
type ExecOption func(*execSettings)

// WithRestart overrides the restart policy for one query.
func WithRestart(p RestartPolicy) ExecOption {
	return func(s *execSettings) { s.restart = p }
}

// WithMaxRestarts overrides the rerun budget for one query: the query
// is attempted at most 1+n times. 0 means DefaultMaxRestarts; negative
// means no reruns.
func WithMaxRestarts(n int) ExecOption {
	return func(s *execSettings) { s.maxRestarts = n }
}

// WithTimeout bounds one query with a deadline, as if the caller had
// wrapped ctx in context.WithTimeout; d <= 0 means no bound. The bound
// covers the whole query including any restarts.
func WithTimeout(d time.Duration) ExecOption {
	return func(s *execSettings) { s.timeout = d }
}

// WithTrace records one TraceSpan per wire exchange into
// DistStats.Trace: round, owner, replica, kind, logical messages,
// bytes, duration and any failover or handoff the exchange absorbed.
// Tracing never perturbs the query's answers or primary accounting
// (Stats.Net) — it observes the exchanges the protocol was going to
// make anyway — but it allocates per exchange, so it is off by default.
func WithTrace() ExecOption {
	return func(s *execSettings) { s.trace = true }
}

// resolveExec applies opts over the cluster-level defaults and
// normalizes the rerun budget (0 → DefaultMaxRestarts, negative → 0).
func resolveExec(defaults execSettings, opts []ExecOption) execSettings {
	s := defaults
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}
	if s.maxRestarts == 0 {
		s.maxRestarts = DefaultMaxRestarts
	} else if s.maxRestarts < 0 {
		s.maxRestarts = 0
	}
	return s
}

// distRestartConfig maps the public policy onto the restart driver's.
func distRestartConfig(s execSettings) dist.RestartConfig {
	cfg := dist.RestartConfig{MaxRestarts: s.maxRestarts}
	switch s.restart {
	case RestartFailed:
		cfg.Policy = dist.RestartOnFailure
	case RestartAlways:
		cfg.Policy = dist.RestartAlways
	default:
		cfg.Policy = dist.RestartOff
	}
	return cfg
}

// runOver executes a protocol over a transport — rerunning it per the
// resolved restart settings — and adapts the result. name resolves
// item IDs to display names (nil leaves names empty — a cluster
// originator holds no dictionary).
func runOver(ctx context.Context, t transport.Transport, q Query, protocol Protocol, name func(Item) string, settings execSettings) (*DistResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if settings.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, settings.timeout)
		defer cancel()
	}
	if q.K < 1 || q.K > t.N() {
		return nil, fmt.Errorf("topk: k=%d out of range [1,%d]", q.K, t.N())
	}
	scoring := q.Scoring
	if scoring == nil {
		scoring = Sum()
	}
	run, err := runnerFor(protocol)
	if err != nil {
		return nil, err
	}
	opts := dist.Options{
		K:       q.K,
		Scoring: adaptScoring(scoring),
		Tracker: bestpos.Kind(q.Tracker),
		Trace:   settings.trace,
	}
	res, err := dist.RunWithRestart(ctx, func() (*dist.Result, error) {
		return run(ctx, t, opts)
	}, distRestartConfig(settings))
	if err != nil {
		var ee *dist.ExhaustedError
		if errors.As(err, &ee) {
			return nil, &RestartExhaustedError{Attempts: ee.Attempts, Err: liftOwnerFailure(ee.Err)}
		}
		return nil, liftOwnerFailure(err)
	}
	out := &DistResult{Protocol: protocol}
	out.Items = make([]ScoredItem, len(res.Items))
	for i, it := range res.Items {
		si := ScoredItem{Item: Item(it.Item), Score: it.Score}
		if name != nil {
			si.Name = name(si.Item)
		}
		out.Items[i] = si
	}
	out.Stats = distStatsOf(res)
	return out, nil
}

// ExecDistributed executes the query in the simulated distributed
// setting of the paper: one owner node per list, a query originator, and
// message accounting. The simulation is deterministic and in-process;
// Stats reports what would travel over a real network. ctx is honored at
// per-exchange granularity. opts override per-query execution settings
// (the in-process transport cannot fail, so restart options are
// accepted but moot; WithTimeout applies). For real HTTP owners see
// DialCluster.
func (db *Database) ExecDistributed(ctx context.Context, q Query, protocol Protocol, opts ...ExecOption) (*DistResult, error) {
	t, err := transport.NewLoopback(db.db)
	if err != nil {
		return nil, err
	}
	return runOver(ctx, t, q, protocol, db.NameOf, resolveExec(execSettings{}, opts))
}

// RunDistributed executes the query in the simulated distributed setting
// without a context.
//
// Deprecated: use ExecDistributed, which adds cancellation and
// deadlines; RunDistributed is equivalent to
// ExecDistributed(context.Background(), q, protocol).
func (db *Database) RunDistributed(q Query, protocol Protocol) (*DistResult, error) {
	return db.ExecDistributed(context.Background(), q, protocol)
}

// RoutingPolicy selects which replica of a list serves each exchange of
// a cluster query (see ClusterConfig.Policy).
type RoutingPolicy uint8

const (
	// RoutePrimary always prefers the lowest-index healthy replica of
	// each list; later replicas are pure standbys. The default.
	RoutePrimary RoutingPolicy = iota
	// RouteRoundRobin rotates stateless exchanges across the healthy
	// replicas of each list.
	RouteRoundRobin
	// RouteFastest prefers the healthy replica with the lowest smoothed
	// (EWMA) round-trip latency.
	RouteFastest
)

// String returns the policy name ParseRoutingPolicy accepts.
func (p RoutingPolicy) String() string { return transport.RoutingPolicy(p).String() }

// RoutingPolicies lists the available routing policies.
func RoutingPolicies() []RoutingPolicy {
	return []RoutingPolicy{RoutePrimary, RouteRoundRobin, RouteFastest}
}

// ParseRoutingPolicy resolves a policy name ("primary", "round-robin"/
// "rr", "fastest"), case-insensitively; "" is RoutePrimary.
func ParseRoutingPolicy(name string) (RoutingPolicy, error) {
	p, err := transport.ParseRoutingPolicy(name)
	if err != nil {
		return 0, fmt.Errorf("topk: unknown routing policy %q (want primary, round-robin or fastest)", name)
	}
	return RoutingPolicy(p), nil
}

// ParseTopology parses the CLI cluster syntax into a replica topology:
// lists are comma-separated and a list's replicas are |-separated, so
//
//	host:a|host:b,host:c
//
// is a two-list cluster whose first list is served by the two replicas
// host:a and host:b. Each element is a host:port or a full URL;
// whitespace around separators is ignored. The flat single-owner syntax
// ("host:a,host:c") parses to a one-replica-per-list topology.
func ParseTopology(s string) ([][]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("topk: empty topology")
	}
	lists := strings.Split(s, ",")
	topo := make([][]string, len(lists))
	for i, l := range lists {
		if strings.TrimSpace(l) == "" {
			return nil, fmt.Errorf("topk: topology list %d is empty (lists are comma-separated; got list token %q)", i, l)
		}
		for j, tok := range strings.Split(l, "|") {
			r := strings.TrimSpace(tok)
			if r == "" {
				return nil, fmt.Errorf("topk: topology list %d: empty replica address at token %d of %q (replicas are |-separated)", i, j, strings.TrimSpace(l))
			}
			topo[i] = append(topo[i], r)
		}
	}
	return topo, nil
}

// ClusterConfig declares a cluster connection: the replica topology and
// the policies that drive it. The zero value of every field except
// Topology is a sensible default, so
//
//	topk.DialClusterConfig(ctx, topk.ClusterConfig{Topology: topo})
//
// behaves like DialCluster with failover armed.
type ClusterConfig struct {
	// Topology maps every list to its replica set: Topology[i] holds the
	// addresses ("host:port" or full URLs) of the owner processes
	// serving list i. Every replica of a list must serve the same list
	// of the same database; the dial handshake validates it. See
	// ParseTopology for the CLI syntax.
	Topology [][]string
	// Policy routes each stateless exchange across a list's healthy
	// replicas (and picks the replica each query session pins its
	// cursor-bearing traffic to). Default RoutePrimary.
	Policy RoutingPolicy
	// HealthInterval is the cadence of the background health prober that
	// demotes unreachable replicas and revives recovered ones. 0 means
	// the default (a few seconds); negative disables background probing
	// — the data plane still demotes replicas that fail exchanges. The
	// prober runs only when some list actually has replicas to choose
	// between; a flat topology spawns no background work.
	HealthInterval time.Duration
	// RequestTimeout bounds every HTTP attempt (default 30s).
	RequestTimeout time.Duration
	// Retries is the transient-failure budget of a replayable exchange:
	// how many extra attempts it may spend, against a sibling replica
	// when one is routable. 0 means the default (1); negative disables
	// retries.
	Retries int
	// BackoffBase and BackoffCap shape the full-jitter exponential
	// backoff slept before each retry: the a-th re-attempt sleeps a
	// uniform draw from (0, min(BackoffCap, BackoffBase<<(a-1))], so a
	// retry storm decorrelates instead of stampeding a recovering
	// owner. Zero means the defaults (2ms base, 250ms cap); a negative
	// BackoffBase restores immediate retries.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerThreshold is each replica's circuit-breaker trip point:
	// after this many consecutive failures (data plane or health probe)
	// the breaker opens and routing avoids the replica until a half-open
	// probe exchange succeeds; each failed probe doubles the cooldown,
	// capped. 0 means the default (5); negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the first open interval (default 1s).
	BreakerCooldown time.Duration
	// Wire selects the data-plane codec: "" or "auto" (binary when every
	// owner advertises it), "json", "binary". See Cluster.SetWire.
	Wire string
	// Restart is the default restart policy of this cluster's queries:
	// when a query dies on a failing replica, rerun it from scratch on
	// the survivors instead of surfacing the error. Default RestartOff.
	// Override per query with WithRestart.
	Restart RestartPolicy
	// MaxRestarts bounds the reruns one query may spend: at most
	// 1+MaxRestarts attempts. 0 means DefaultMaxRestarts; negative means
	// no reruns. Override per query with WithMaxRestarts.
	MaxRestarts int
	// DisableHandoff turns off the session-state handoff that lets a
	// sessionful query survive its pinned replica's death by re-pinning
	// to a sibling that mirrors the session state. With handoff off, a
	// pinned replica's death surfaces as *OwnerFailedError (or triggers
	// a whole-query restart when Restart allows one) — the pre-handoff
	// behaviour, and a useful baseline when measuring handoff's cost.
	DisableHandoff bool
	// Logger receives the cluster client's structured recovery log:
	// replica health transitions, mirror promotions and session
	// handoffs, at slog.LevelInfo and below. nil discards them.
	Logger *slog.Logger
}

// Cluster is a connection to real list owners serving the distributed
// protocols over HTTP — one or more owner processes per list, each
// started with cmd/topk-owner. A Cluster is safe for concurrent use:
// every Exec opens its own owner-side query session (seen positions,
// scan cursors, access tallies keyed by a session ID carried in every
// message), so any number of originator goroutines can query the same
// owners at once with answers and accounting identical to running them
// serially.
//
// When a list has several replicas, session opens fan out to all of
// them, stateless traffic is routed by the configured policy and fails
// over mid-query when a replica dies, and cursor-bearing traffic is
// pinned per session with its state deltas mirrored to a sibling — a
// pinned replica's death hands the session off to the synced sibling
// and the query completes. Only when no synced sibling remains does the
// death surface as *OwnerFailedError, and ClusterConfig.Restart can
// absorb even that by rerunning the query on the survivors. Answers and
// primary accounting (Stats.Net) stay bit-identical to a single-owner
// run in every case; Stats.Recovery records what failed underneath.
type Cluster struct {
	t *transport.HTTPClient
	// defaults are the dial-time per-query settings (restart policy and
	// budget from ClusterConfig) that ExecOptions override.
	defaults execSettings
	// mu serializes the SetWire guard against the first Exec: check and
	// set must be one step, or a SetWire racing the first query could
	// slip past ErrClusterStarted and flip the codec mid-flight.
	mu      sync.Mutex
	started bool
}

// markStarted records that a query has run; SetWire refuses afterwards.
func (c *Cluster) markStarted() {
	c.mu.Lock()
	c.started = true
	c.mu.Unlock()
}

// parseWireFormat maps the ClusterConfig/SetWire wire names onto the
// transport's codec selector.
func parseWireFormat(format string) (transport.WireFormat, error) {
	switch format {
	case "", "auto":
		return transport.WireAuto, nil
	case "json":
		return transport.WireJSON, nil
	case "binary", "bin":
		return transport.WireBinary, nil
	default:
		return 0, fmt.Errorf("topk: unknown wire format %q (want auto, json or binary)", format)
	}
}

// DialClusterConfig connects to the owner processes of a declarative
// cluster topology. The dial handshake — bounded by ctx — validates
// every reachable replica (list index, list length, cluster width) and
// negotiates the wire codec; replicas that are down at dial time are
// tolerated as long as each list has at least one reachable replica,
// and revived by the background health prober when they return. Close
// the returned cluster to stop the prober and release connections.
func DialClusterConfig(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	wire, err := parseWireFormat(cfg.Wire)
	if err != nil {
		return nil, err
	}
	t, err := transport.Dial(ctx, transport.DialConfig{
		Topology:         cfg.Topology,
		Policy:           transport.RoutingPolicy(cfg.Policy),
		HealthInterval:   cfg.HealthInterval,
		RequestTimeout:   cfg.RequestTimeout,
		Retries:          cfg.Retries,
		BackoffBase:      cfg.BackoffBase,
		BackoffCap:       cfg.BackoffCap,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
		Wire:             wire,
		DisableHandoff:   cfg.DisableHandoff,
		Logger:           cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{
		t:        t,
		defaults: execSettings{restart: cfg.Restart, maxRestarts: cfg.MaxRestarts},
	}, nil
}

// DialCluster connects to a flat owner set; owners[i] ("host:port" or a
// full URL) must serve list i. It is exactly
// DialClusterConfig(context.Background(), ClusterConfig{Topology: one
// replica per list}): every owner must agree on the list length and the
// number of lists, all sessions share one pooled HTTP client, every
// request is bounded by a per-request timeout and — when replaying it
// cannot change what the query observes — retried once on transient
// failures (connection errors, 5xx), with the failing owner named in
// the returned error.
//
// The dial handshake also negotiates the wire codec: the compact binary
// codec when every owner advertises it, JSON otherwise (see SetWire).
// For replicated lists, routing policies and mid-query failover, see
// DialClusterConfig.
func DialCluster(owners []string) (*Cluster, error) {
	topo := make([][]string, len(owners))
	for i, o := range owners {
		topo[i] = []string{o}
	}
	return DialClusterConfig(context.Background(), ClusterConfig{Topology: topo})
}

// ErrClusterStarted reports a SetWire call after the cluster already
// executed a query. The wire preference is client state shared by every
// session, so flipping it under in-flight queries would be a data race
// on the encoding path; set it before the first Exec, or declare it in
// ClusterConfig.Wire.
var ErrClusterStarted = errors.New("topk: SetWire after the cluster executed a query; set the wire before the first Exec (or use ClusterConfig.Wire)")

// SetWire overrides the cluster's negotiated wire codec: "auto" (the
// default — binary when every owner advertises it), "json" (the
// debugging fallback), or "binary" (forced). Call it before the first
// Exec — afterwards it fails with ErrClusterStarted; answers and
// accounting are identical either way, only bytes on the wire differ.
func (c *Cluster) SetWire(format string) error {
	wf, err := parseWireFormat(format)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return ErrClusterStarted
	}
	c.t.SetWireFormat(wf)
	return nil
}

// N returns the shared list length of the cluster.
func (c *Cluster) N() int { return c.t.N() }

// M returns the number of owners (lists).
func (c *Cluster) M() int { return c.t.M() }

// ReplicaHealth is one replica's connection state as the cluster client
// sees it — what topk-query's verbose mode prints.
type ReplicaHealth struct {
	// List and Replica locate the replica in the topology.
	List    int
	Replica int
	// URL is the replica's base URL.
	URL string
	// Healthy is the latest verdict of the health prober or data plane.
	Healthy bool
	// Latency is the smoothed (EWMA) round-trip latency; 0 if never
	// measured.
	Latency time.Duration
	// Failures counts data-plane failures observed on this replica;
	// Failovers counts exchanges it served after a sibling failed them.
	Failures  int64
	Failovers int64
	// Breaker is the replica's circuit-breaker phase: "closed" (traffic
	// flows), "open" (cooling down after consecutive failures; routing
	// avoids the replica) or "half-open" (the next exchange is the
	// readmission probe).
	Breaker string
}

// Health snapshots the per-replica connection state: health verdicts,
// EWMA latencies and failover tallies, lists in order and replicas in
// topology order within each list.
func (c *Cluster) Health() []ReplicaHealth {
	hs := c.t.Health()
	out := make([]ReplicaHealth, len(hs))
	for i, h := range hs {
		// Field-identical structs: the conversion turns any future field
		// drift between the two into a compile error instead of a silent
		// zero value.
		out[i] = ReplicaHealth(h)
	}
	return out
}

// Exec executes the query against the cluster's owners inside its own
// query session. The answers and the primary Stats accounting
// (Stats.Net) are identical to the in-process Database.ExecDistributed
// on the same data — the protocols cannot tell the backends apart, and
// with replicated lists they cannot tell how the traffic was routed,
// handed off or restarted — but Stats.Net.Elapsed is real network
// time and Stats.Recovery reports any failures the run absorbed. ctx
// cancels or bounds the run at per-exchange granularity; the
// owner-side session is released either way. opts override the
// cluster's per-query defaults (WithRestart, WithMaxRestarts,
// WithTimeout). Item names are left empty: the originator holds no
// dictionary.
func (c *Cluster) Exec(ctx context.Context, q Query, protocol Protocol, opts ...ExecOption) (*DistResult, error) {
	c.markStarted()
	return runOver(ctx, c.t, q, protocol, nil, resolveExec(c.defaults, opts))
}

// RunDistributed executes the query against the cluster without a
// context.
//
// Deprecated: use Exec, which adds cancellation and deadlines;
// RunDistributed is equivalent to Exec(context.Background(), q,
// protocol).
func (c *Cluster) RunDistributed(q Query, protocol Protocol) (*DistResult, error) {
	return c.Exec(context.Background(), q, protocol)
}

// Close stops the cluster's background health prober and releases its
// connections.
func (c *Cluster) Close() error { return c.t.Close() }

// ScoreUpdate is one (item, delta) score change of a live update feed:
// item's local score at the addressed owner moves by Delta. Items are
// the dense 0-based IDs the cluster's queries report.
type ScoreUpdate struct {
	Item  int32
	Delta float64
}

// UpdateAck is the cluster-wide acknowledgement of one update batch.
type UpdateAck struct {
	// Applied reports the batch was applied fresh by at least one
	// replica; false means every replica had already seen the (feed, seq)
	// pair — a retried or reordered batch, acknowledged without effect.
	Applied bool
	// Version is the highest per-list update version across the list's
	// replicas after the batch.
	Version uint64
	// Crossings names the standing queries whose owner-side filters
	// flagged this batch as a potential top-k change (union across
	// replicas, sorted) — the live coordinator re-evaluates exactly
	// these.
	Crossings []string
}

// SendUpdate applies one batch of score updates to the list of owner
// index owner, fanned out to every replica so the replicas stay
// interchangeable. Batches of one feed carry strictly increasing
// sequence numbers; a batch at or below a replica's last applied
// sequence is acknowledged without being re-applied, which makes
// re-sending after a partial failure (or a transport retry) safe.
// Owners serving read-only lists reject updates — start them with
// updates enabled (topk-owner -mutable).
func (c *Cluster) SendUpdate(ctx context.Context, owner int, feed string, seq uint64, updates []ScoreUpdate) (UpdateAck, error) {
	c.markStarted()
	ups := make([]transport.ScoreUpdate, len(updates))
	for i, u := range updates {
		ups[i] = transport.ScoreUpdate{Item: list.ItemID(u.Item), Delta: u.Delta}
	}
	resp, err := c.t.UpdateAll(ctx, owner, feed, seq, ups)
	if err != nil {
		return UpdateAck{}, err
	}
	return UpdateAck{Applied: resp.Applied, Version: resp.Version, Crossings: resp.Crossings}, nil
}

// SetLiveFilter installs a standing query's notification filter at
// every replica of owner index owner: updates that touch a watched item
// — or accumulate at least slack of positive drift on any other item —
// are flagged as crossings in their UpdateAck; everything else is
// provably unable to change the query's top-k and stays silent. The
// live coordinator (internal/live) derives slack and watch from the
// standing query's current ranking; most callers never call this
// directly.
func (c *Cluster) SetLiveFilter(ctx context.Context, owner int, query string, slack float64, watch []int32) error {
	ids := make([]list.ItemID, len(watch))
	for i, d := range watch {
		ids[i] = list.ItemID(d)
	}
	return c.t.SetFilter(ctx, owner, query, slack, ids)
}

// ClearLiveFilter removes a standing query's filter at every replica of
// owner index owner (idempotent).
func (c *Cluster) ClearLiveFilter(ctx context.Context, owner int, query string) error {
	return c.t.ClearFilter(ctx, owner, query)
}
