package topk_test

import (
	"fmt"
	"log"
	"os"

	"topk"
)

// The simplest possible use: columns in, ranked answers out.
func ExampleDatabase_TopK() {
	db, err := topk.FromColumns([][]float64{
		{30, 11, 26}, // list 1: local scores of items 0, 1, 2
		{21, 28, 14}, // list 2
		{14, 24, 30}, // list 3
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.TopK(topk.Query{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range res.Items {
		fmt.Printf("item %d: %.0f\n", it.Item, it.Score)
	}
	// Output:
	// item 2: 70
	// item 0: 65
}

// Named items: one map per list, union of keys, missing scores default.
func ExampleFromNamedScores() {
	db, err := topk.FromNamedScores([]map[string]float64{
		{"nantes": 9, "vienna": 7, "paris": 4},
		{"nantes": 2, "vienna": 8, "paris": 6},
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.TopK(topk.Query{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.0f\n", res.Items[0].Name, res.Items[0].Score)
	// Output:
	// vienna: 15
}

// Algorithms can be compared on the same query via Stats.
func ExampleQuery_algorithms() {
	db, err := topk.Generate(topk.GenSpec{Kind: topk.GenUniform, N: 1000, M: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	ta, err := db.TopK(topk.Query{K: 5, Algorithm: topk.TA})
	if err != nil {
		log.Fatal(err)
	}
	bpa2, err := db.TopK(topk.Query{K: 5, Algorithm: topk.BPA2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same answers:", ta.Items[0] == bpa2.Items[0])
	fmt.Println("BPA2 does fewer accesses:", bpa2.Stats.TotalAccesses() < ta.Stats.TotalAccesses())
	// Output:
	// same answers: true
	// BPA2 does fewer accesses: true
}

// Explain writes the paper-style round walkthrough of the run.
func ExampleDatabase_Explain() {
	db, err := topk.FromColumns([][]float64{
		{30, 11, 26},
		{21, 28, 14},
		{14, 24, 30},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.Explain(topk.Query{K: 1, Algorithm: topk.TA}, os.Stdout); err != nil {
		log.Fatal(err)
	}
	// Output:
	// # execution trace — TA, k=1, f=sum
	// round  position  threshold  k-th score  stop
	//     1         1         88          70
	//     2         2         71          70
	//     3         3         39          70  STOP
}

// Distributed execution reports simulated network traffic.
func ExampleDatabase_RunDistributed() {
	db, err := topk.Generate(topk.GenSpec{Kind: topk.GenUniform, N: 500, M: 3, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.RunDistributed(topk.Query{K: 3}, topk.DistBPA2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("answers:", len(res.Items))
	fmt.Println("messages even:", res.Stats.Messages%2 == 0)
	// Output:
	// answers: 3
	// messages even: true
}
