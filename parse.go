package topk

import (
	"fmt"
	"strings"
)

// ParseAlgorithm resolves a case-insensitive algorithm name: "bpa2",
// "bpa", "ta", "fa", "naive", "nra" or "ca". It is the parser behind the
// command-line tools and the HTTP API.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "bpa2":
		return BPA2, nil
	case "bpa":
		return BPA, nil
	case "ta":
		return TA, nil
	case "fa":
		return FA, nil
	case "naive":
		return Naive, nil
	case "nra":
		return NRA, nil
	case "ca":
		return CA, nil
	default:
		return 0, fmt.Errorf("topk: unknown algorithm %q (bpa2, bpa, ta, fa, naive, nra, ca)", name)
	}
}

// ParseScoring resolves a case-insensitive scoring-function name: "sum",
// "avg", "min", "max" or "wsum". Weights are required for "wsum" and
// rejected otherwise.
func ParseScoring(name string, weights []float64) (Scoring, error) {
	lower := strings.ToLower(strings.TrimSpace(name))
	if lower != "wsum" && len(weights) > 0 {
		return nil, fmt.Errorf("topk: scoring %q takes no weights", name)
	}
	switch lower {
	case "sum":
		return Sum(), nil
	case "avg":
		return Avg(), nil
	case "min":
		return Min(), nil
	case "max":
		return Max(), nil
	case "wsum":
		if len(weights) == 0 {
			return nil, fmt.Errorf("topk: scoring wsum requires weights")
		}
		return WeightedSum(weights)
	default:
		return nil, fmt.Errorf("topk: unknown scoring %q (sum, avg, min, max, wsum)", name)
	}
}

// ParseTracker resolves a case-insensitive tracker name: "bitarray",
// "b+tree" (or "btree"), "interval".
func ParseTracker(name string) (Tracker, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "bitarray":
		return BitArrayTracker, nil
	case "b+tree", "btree", "bplustree":
		return BPlusTreeTracker, nil
	case "interval":
		return IntervalTracker, nil
	default:
		return 0, fmt.Errorf("topk: unknown tracker %q (bitarray, b+tree, interval)", name)
	}
}
