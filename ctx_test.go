package topk

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// ctxTestDB builds a database big enough that no threshold algorithm
// finishes in one round.
func ctxTestDB(t testing.TB) *Database {
	t.Helper()
	db, err := Generate(GenSpec{Kind: GenUniform, N: 5_000, M: 6, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExecPreCanceled: a context that is already dead must stop every
// algorithm before it touches a list.
func TestExecPreCanceled(t *testing.T) {
	db := ctxTestDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range ExtendedAlgorithms() {
		if _, err := db.Exec(ctx, Query{K: 10, Algorithm: alg}); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: want context.Canceled, got %v", alg, err)
		}
	}
}

// TestExecCancelMidQuery cancels from inside the round observer — after
// the first round, mid-execution by construction — and expects ctx.Err()
// from the sequential and the parallel executor alike.
func TestExecCancelMidQuery(t *testing.T) {
	db := ctxTestDB(t)
	for _, alg := range []Algorithm{TA, BPA, BPA2} {
		for _, par := range []bool{false, true} {
			ctx, cancel := context.WithCancel(context.Background())
			q := Query{K: 10, Algorithm: alg, Parallel: par}.WithOnRound(func(r Round) {
				if r.Round == 1 {
					cancel()
				}
			})
			_, err := db.Exec(ctx, q)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%v parallel=%v: want context.Canceled, got %v", alg, par, err)
			}
		}
	}
}

// TestExecDeadline: an expired deadline surfaces as DeadlineExceeded.
func TestExecDeadline(t *testing.T) {
	db := ctxTestDB(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := db.Exec(ctx, Query{K: 10}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want DeadlineExceeded, got %v", err)
	}
}

// TestDeprecatedWrappersMatchExec: the kept pre-context signatures must
// stay bit-identical to their Exec equivalents.
func TestDeprecatedWrappersMatchExec(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 400, M: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	old, err := db.TopK(Query{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	now, err := db.Exec(context.Background(), Query{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old.Items, now.Items) || old.Stats.Cost != now.Stats.Cost {
		t.Errorf("TopK and Exec diverge: %+v vs %+v", old, now)
	}
	oldD, err := db.RunDistributed(Query{K: 5}, DistBPA2)
	if err != nil {
		t.Fatal(err)
	}
	nowD, err := db.ExecDistributed(context.Background(), Query{K: 5}, DistBPA2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldD.Items, nowD.Items) || oldD.Stats.Messages != nowD.Stats.Messages {
		t.Errorf("RunDistributed and ExecDistributed diverge: %+v vs %+v", oldD, nowD)
	}
}

// TestProgressiveCtxCancel: cancellation between Next calls ends the
// enumeration — Next goes false, Err reports why — while everything
// delivered before the cancel stays valid.
func TestProgressiveCtxCancel(t *testing.T) {
	db := ctxTestDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	it, err := db.ProgressiveCtx(ctx, ProgressiveQuery{})
	if err != nil {
		t.Fatal(err)
	}
	first, ok := it.Next()
	if !ok {
		t.Fatal("no first answer")
	}
	oracle, err := db.Oracle(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Score != oracle[0].Score {
		t.Errorf("first progressive answer %v, oracle %v", first, oracle[0])
	}
	cancel()
	if _, ok := it.Next(); ok {
		t.Error("Next delivered after cancel")
	}
	if err := it.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", err)
	}
	if it.Delivered() != 1 {
		t.Errorf("Delivered() = %d, want 1", it.Delivered())
	}
	// The deprecated no-context constructor still enumerates fully.
	it2, err := db.Progressive(ProgressiveQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it2.Next(); !ok || it2.Err() != nil {
		t.Errorf("deprecated Progressive broken: ok=%v err=%v", ok, it2.Err())
	}
}

// TestExecDistributedCancel: the in-process distributed run honors ctx
// too (the per-exchange checks live below the public surface).
func TestExecDistributedCancel(t *testing.T) {
	db := ctxTestDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range Protocols() {
		if _, err := db.ExecDistributed(ctx, Query{K: 10}, p); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: want context.Canceled, got %v", p, err)
		}
	}
}

// TestClusterConcurrentOriginators is the PR's acceptance scenario: two
// originators running DIFFERENT protocols concurrently against the same
// HTTP owner cluster, both returning answers bit-identical to
// centralized BPA, plus a canceled third originator aborting with
// ctx.Err() and zero leaked goroutines.
func TestClusterConcurrentOriginators(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 600, M: 3, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Exec(context.Background(), Query{K: 10, Algorithm: BPA})
	if err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, db)

	base := runtime.NumGoroutine()
	protocols := []Protocol{DistBPA2, DistTA}
	results := make([]*DistResult, len(protocols))
	errs := make([]error, len(protocols))
	var wg sync.WaitGroup
	for i, p := range protocols {
		wg.Add(1)
		go func(i int, p Protocol) {
			defer wg.Done()
			results[i], errs[i] = c.Exec(context.Background(), Query{K: 10}, p)
		}(i, p)
	}
	wg.Wait()
	for i, p := range protocols {
		if errs[i] != nil {
			t.Fatalf("%v: %v", p, errs[i])
		}
		if len(results[i].Items) != len(want.Items) {
			t.Fatalf("%v: %d answers, want %d", p, len(results[i].Items), len(want.Items))
		}
		for j := range want.Items {
			if results[i].Items[j].Item != want.Items[j].Item || results[i].Items[j].Score != want.Items[j].Score {
				t.Errorf("%v answer %d: %+v vs centralized BPA %+v", p, j, results[i].Items[j], want.Items[j])
			}
		}
	}

	// A canceled originator alongside: prompt ctx.Err(), no leaks.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Exec(ctx, Query{K: 10}, DistBPA2); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled originator: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Errorf("goroutines leaked: %d, want <= %d", g, base)
	}
}
