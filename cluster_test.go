package topk

import (
	"context"
	"net/http/httptest"
	"testing"

	"topk/internal/transport"
)

// startCluster serves every list of a generated database over httptest
// owners and dials them.
func startCluster(t *testing.T, db *Database) *Cluster {
	t.Helper()
	urls := make([]string, db.M())
	for i := range urls {
		srv, err := transport.NewServer(db.db, i)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	c, err := DialCluster(urls)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClusterMatchesInProcess: the public cluster face must return the
// same answers and the same accounting as the in-process simulation for
// every protocol — only Elapsed may differ.
func TestClusterMatchesInProcess(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 250, M: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, db)
	if c.N() != db.N() || c.M() != db.M() {
		t.Fatalf("cluster dims %d/%d", c.N(), c.M())
	}
	for _, p := range Protocols() {
		// The deprecated wrapper and the ctx front door must agree with
		// each other and across backends.
		want, err := db.RunDistributed(Query{K: 7}, p)
		if err != nil {
			t.Fatalf("%v in-process: %v", p, err)
		}
		got, err := c.Exec(context.Background(), Query{K: 7}, p)
		if err != nil {
			t.Fatalf("%v cluster: %v", p, err)
		}
		if len(got.Items) != len(want.Items) {
			t.Fatalf("%v: %d answers, want %d", p, len(got.Items), len(want.Items))
		}
		for i := range want.Items {
			if got.Items[i].Item != want.Items[i].Item || got.Items[i].Score != want.Items[i].Score {
				t.Errorf("%v answer %d: %+v vs %+v", p, i, got.Items[i], want.Items[i])
			}
		}
		if got.Stats.Messages != want.Stats.Messages || got.Stats.Payload != want.Stats.Payload ||
			got.Stats.Rounds != want.Stats.Rounds || got.Stats.TotalAccesses != want.Stats.TotalAccesses {
			t.Errorf("%v stats diverge: %+v vs %+v", p, got.Stats, want.Stats)
		}
		if got.Stats.Elapsed <= 0 {
			t.Errorf("%v: cluster run reported no elapsed time", p)
		}
	}
}

// TestClusterValidation: dial and query failures are reported, not
// mis-answered.
func TestClusterValidation(t *testing.T) {
	if _, err := DialCluster(nil); err == nil {
		t.Error("empty owner set accepted")
	}
	if _, err := DialCluster([]string{"127.0.0.1:1"}); err == nil {
		t.Error("unreachable owner accepted")
	}
	db, err := Generate(GenSpec{Kind: GenUniform, N: 50, M: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, db)
	if _, err := c.RunDistributed(Query{K: 0}, DistBPA2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := c.RunDistributed(Query{K: 99}, DistBPA2); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := c.RunDistributed(Query{K: 1}, Protocol(42)); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := c.RunDistributed(Query{K: 1, Scoring: Min()}, TPUT); err == nil {
		t.Error("TPUT with Min accepted")
	}
}

// TestParseProtocol covers the protocol name table.
func TestParseProtocol(t *testing.T) {
	for name, want := range map[string]Protocol{
		"bpa2": DistBPA2, "dist-bpa2": DistBPA2, "BPA2": DistBPA2,
		"bpa": DistBPA, "ta": DistTA, "dist-ta": DistTA,
		"tput": TPUT, "tput-a": TPUTA, "tputa": TPUTA,
	} {
		got, err := ParseProtocol(name)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseProtocol("zzz"); err == nil {
		t.Error("unknown protocol name accepted")
	}
	if TPUTA.String() != "tput-a" {
		t.Errorf("TPUTA.String() = %q", TPUTA.String())
	}
}
