// Command topk-gen generates a synthetic database from the paper's
// evaluation families (Section 6.1) and writes it to a file in the
// library's binary format (or CSV with -csv).
//
// Usage:
//
//	topk-gen -kind uniform -n 100000 -m 8 -o uniform.topk
//	topk-gen -kind correlated -alpha 0.01 -n 100000 -m 8 -o corr.topk
//	topk-gen -kind gaussian -n 50000 -m 4 -csv -o gauss.csv
package main

import (
	"os"

	"topk/internal/cli"
)

func main() {
	os.Exit(cli.Gen(os.Args[1:], os.Stdout, os.Stderr))
}
