// Command topk-owner serves one sorted list as a distributed top-k owner
// node over HTTP. A query originator (topk-query -owners, or the topk
// package's DialCluster) drives the paper's protocols — TA, BPA, BPA2,
// TPUT, TPUT-A — against a set of such owners, one process per list.
//
// Every owner of a cluster must hold the same database (same file, or
// -gen with the same parameters and seed) and serve a distinct list of
// it; the originator validates both at dial time.
//
// A runnable two-owner example, no files needed:
//
//	topk-owner -gen uniform -n 10000 -m 2 -seed 7 -list 0 -addr localhost:9001 &
//	topk-owner -gen uniform -n 10000 -m 2 -seed 7 -list 1 -addr localhost:9002 &
//	topk-query -owners localhost:9001,localhost:9002 -k 10
//
// The same cluster from a database file written by topk-gen:
//
//	topk-gen -kind uniform -n 10000 -m 2 -seed 7 -o db.topk
//	topk-owner -db db.topk -list 0 -addr localhost:9001 &
//	topk-owner -db db.topk -list 1 -addr localhost:9002 &
//	topk-query -owners localhost:9001,localhost:9002 -k 10 -protocol tput
//
// The answers — and the message/payload/round accounting printed by
// topk-query — are identical to the in-process simulation on the same
// data; only the elapsed time is real.
//
// Owner-side protocol state (seen positions, scan cursors, access
// tallies) is keyed by the query session ID carried in every message, so
// any number of originators can query the same owners concurrently; each
// originator's accounting is as if it were alone on the cluster.
//
// A list may be served by several replica owners — same database, same
// -list index, distinct -replica labels — and the originator dials them
// as one topology (replicas |-separated, lists comma-separated),
// routing by policy and failing over mid-query when a replica dies:
//
//	topk-owner -gen uniform -n 10000 -m 2 -seed 7 -list 0 -replica a -addr localhost:9001 &
//	topk-owner -gen uniform -n 10000 -m 2 -seed 7 -list 0 -replica b -addr localhost:9101 &
//	topk-owner -gen uniform -n 10000 -m 2 -seed 7 -list 1 -replica a -addr localhost:9002 &
//	topk-query -owners 'localhost:9001|localhost:9101,localhost:9002' -k 10 -policy round-robin
//
// The -replica label is advertised in /stats so operators can tell a
// list's interchangeable owners apart.
package main

import (
	"os"

	"topk/internal/cli"
)

func main() {
	os.Exit(cli.Owner(os.Args[1:], os.Stdout, os.Stderr))
}
