// Command topk-query runs a top-k query against a database file written
// by topk-gen (binary or CSV) and prints the answers plus the access
// statistics of the chosen algorithm.
//
// Usage:
//
//	topk-query -db uniform.topk -k 10
//	topk-query -db uniform.topk -k 10 -alg ta -compare
//	topk-query -db uniform.topk -k 3 -alg bpa -explain
//	topk-query -csv data.csv -k 5 -scoring wsum -weights 2,1,0.5
package main

import (
	"os"

	"topk/internal/cli"
)

func main() {
	os.Exit(cli.Query(os.Args[1:], os.Stdout, os.Stderr))
}
