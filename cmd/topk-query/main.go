// Command topk-query runs a top-k query against a database file written
// by topk-gen (binary or CSV) and prints the answers plus the access
// statistics of the chosen algorithm.
//
// Usage:
//
//	topk-query -db uniform.topk -k 10
//	topk-query -db uniform.topk -k 10 -alg ta -compare
//	topk-query -db uniform.topk -k 3 -alg bpa -explain
//	topk-query -csv data.csv -k 5 -scoring wsum -weights 2,1,0.5
//
// With -owners it turns into the query originator of a real cluster:
// each address must run cmd/topk-owner serving the corresponding list
// (owner i serves list i), and the chosen protocol's messages travel
// over HTTP instead of the in-process simulation. A list may name
// several |-separated replicas; -policy routes across them (primary,
// round-robin, fastest by EWMA latency) with mid-query failover, and
// -verbose prints the per-replica health table after the query:
//
//	topk-query -owners localhost:9001,localhost:9002 -k 10 -protocol bpa2
//	topk-query -owners 'localhost:9001|localhost:9101,localhost:9002' -k 10 -policy fastest -verbose
package main

import (
	"os"

	"topk/internal/cli"
)

func main() {
	os.Exit(cli.Query(os.Args[1:], os.Stdout, os.Stderr))
}
