// Command topk-bench regenerates the tables and figures of the paper's
// performance evaluation (Section 6). Each experiment prints one table
// whose series correspond to one figure of the paper.
//
// Usage:
//
//	topk-bench -list
//	topk-bench -exp fig3 -plot
//	topk-bench -exp fig3,fig4,fig5 -scale 0.1
//	topk-bench -exp all -out results/
//
// The default configuration reproduces the paper's Table 1 defaults
// (n=100,000, k=20, m=8, Sum scoring, bit-array tracker) averaged over
// -trials random databases. -scale shrinks every database size for quick
// runs; the series shapes are preserved.
package main

import (
	"os"

	"topk/internal/cli"
)

func main() {
	os.Exit(cli.Bench(os.Args[1:], os.Stdout, os.Stderr))
}
