// Command topk-serve exposes a database over an HTTP JSON API: run a
// query with /v1/topk, inspect a round-by-round walkthrough with
// /v1/explain, probe liveness with /healthz.
//
// Usage:
//
//	topk-serve -db uniform.topk -addr localhost:8080
//	topk-serve -gen uniform -n 10000 -m 8
//	curl 'http://localhost:8080/v1/topk?k=10&alg=bpa2'
//	curl 'http://localhost:8080/v1/explain?k=3&alg=bpa'
package main

import (
	"os"

	"topk/internal/cli"
)

func main() {
	os.Exit(cli.Serve(os.Args[1:], os.Stdout, os.Stderr))
}
