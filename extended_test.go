package topk

import (
	"strings"
	"testing"
)

func ballotDB(t *testing.T) *Database {
	t.Helper()
	db, err := FromColumns([][]float64{
		{30, 11, 26, 28, 17},
		{21, 28, 14, 13, 24},
		{14, 24, 30, 25, 29},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExtendedAlgorithmsFacade(t *testing.T) {
	ext := ExtendedAlgorithms()
	if len(ext) != 7 || ext[5] != NRA || ext[6] != CA {
		t.Fatalf("ExtendedAlgorithms() = %v", ext)
	}
	if NRA.String() != "NRA" || CA.String() != "CA" {
		t.Errorf("names: %q %q", NRA.String(), CA.String())
	}
}

// TestNRACASetCorrectness: NRA/CA through the facade return the same
// item set as the exact default, with valid lower-bound scores.
func TestNRACASetCorrectness(t *testing.T) {
	db := ballotDB(t)
	exact, err := db.TopK(Query{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{NRA, CA} {
		res, err := db.TopK(Query{K: 3, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Algorithm != alg {
			t.Errorf("Algorithm = %v, want %v", res.Algorithm, alg)
		}
		got := map[Item]bool{}
		for _, it := range res.Items {
			got[it.Item] = true
		}
		for _, it := range exact.Items {
			if !got[it.Item] {
				t.Errorf("%v: missing item %d (%s); got %+v", alg, it.Item, it.Name, res.Items)
			}
		}
		if alg == NRA && res.Stats.RandomAccesses != 0 {
			t.Errorf("NRA did %d random accesses", res.Stats.RandomAccesses)
		}
	}
}

func TestNRAFloorsThroughFacade(t *testing.T) {
	db := ballotDB(t)
	if _, err := db.TopK(Query{K: 1, Algorithm: NRA, Floors: []float64{0, 0}}); err == nil ||
		!strings.Contains(err.Error(), "floors") {
		t.Errorf("wrong-arity floors not rejected: %v", err)
	}
	res, err := db.TopK(Query{K: 1, Algorithm: NRA, Floors: []float64{0, 0, 0}})
	if err != nil {
		t.Fatalf("sound floors rejected: %v", err)
	}
	if len(res.Items) != 1 {
		t.Fatalf("Items = %+v", res.Items)
	}
}

func TestCAPeriodThroughFacade(t *testing.T) {
	db := ballotDB(t)
	if _, err := db.TopK(Query{K: 1, Algorithm: CA, CAPeriod: -2}); err == nil {
		t.Error("negative CA period accepted")
	}
	res, err := db.TopK(Query{K: 2, Algorithm: CA, CAPeriod: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 {
		t.Fatalf("Items = %+v", res.Items)
	}
}

// TestParallelQuery: Parallel runs give identical answers and counts.
func TestParallelQuery(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 500, M: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{TA, BPA, BPA2} {
		seq, err := db.TopK(Query{K: 10, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		par, err := db.TopK(Query{K: 10, Algorithm: alg, Parallel: true})
		if err != nil {
			t.Fatalf("%v parallel: %v", alg, err)
		}
		if par.Stats.TotalAccesses() != seq.Stats.TotalAccesses() {
			t.Errorf("%v: parallel %d accesses != sequential %d",
				alg, par.Stats.TotalAccesses(), seq.Stats.TotalAccesses())
		}
		if len(par.Items) != len(seq.Items) {
			t.Fatalf("%v: item counts differ", alg)
		}
		for i := range par.Items {
			if par.Items[i] != seq.Items[i] {
				t.Errorf("%v: item %d %+v != %+v", alg, i, par.Items[i], seq.Items[i])
			}
		}
	}
	// Unsupported parallel combinations fail loudly.
	if _, err := db.TopK(Query{K: 1, Algorithm: FA, Parallel: true}); err == nil {
		t.Error("parallel FA accepted")
	}
	if _, err := db.TopK(Query{K: 1, Algorithm: NRA, Parallel: true}); err == nil {
		t.Error("parallel NRA accepted")
	}
}

func TestIntervalTrackerThroughFacade(t *testing.T) {
	db := ballotDB(t)
	for _, alg := range []Algorithm{BPA, BPA2} {
		def, err := db.TopK(Query{K: 3, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		iv, err := db.TopK(Query{K: 3, Algorithm: alg, Tracker: IntervalTracker})
		if err != nil {
			t.Fatal(err)
		}
		if iv.Stats.TotalAccesses() != def.Stats.TotalAccesses() {
			t.Errorf("%v: interval tracker changed accounting: %d != %d",
				alg, iv.Stats.TotalAccesses(), def.Stats.TotalAccesses())
		}
		for i := range def.Items {
			if iv.Items[i] != def.Items[i] {
				t.Errorf("%v: interval tracker changed answers", alg)
			}
		}
	}
}

func TestMonitorFacade(t *testing.T) {
	mon, err := NewMonitor(MonitorConfig{Sources: 2, K: 2, WindowBuckets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Observe(0, "/a", 10); err != nil {
		t.Fatal(err)
	}
	if err := mon.Observe(1, "/b", 20); err != nil {
		t.Fatal(err)
	}
	snap, err := mon.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Query != 1 || snap.Universe != 2 || len(snap.Items) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Items[0].Key != "/b" || snap.Items[0].Score != 20 {
		t.Errorf("rank 1 = %+v, want /b 20", snap.Items[0])
	}
	if len(snap.Changes) != 2 || snap.Changes[0].Kind != ChangeEntered {
		t.Errorf("Changes = %+v", snap.Changes)
	}
	if snap.Accesses == 0 {
		t.Error("no accesses recorded")
	}

	// Expire /a and /b, add /c; the old keys must Leave.
	mon.Advance()
	mon.Advance()
	if err := mon.Observe(0, "/c", 1); err != nil {
		t.Fatal(err)
	}
	snap, err = mon.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Universe != 1 || snap.Items[0].Key != "/c" {
		t.Fatalf("after expiry: %+v", snap)
	}
	var left int
	for _, c := range snap.Changes {
		if c.Kind == ChangeLeft {
			left++
		}
	}
	if left != 2 {
		t.Errorf("Changes = %+v, want two departures", snap.Changes)
	}
}

func TestMonitorFacadeValidation(t *testing.T) {
	if _, err := NewMonitor(MonitorConfig{Sources: 0, K: 1}); err == nil {
		t.Error("0 sources accepted")
	}
	if _, err := NewMonitor(MonitorConfig{Sources: 1, K: 1, Algorithm: NRA}); err == nil {
		t.Error("NRA monitor accepted")
	}
	if _, err := NewMonitor(MonitorConfig{Sources: 1, K: 1, Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestMonitorChangeKindString(t *testing.T) {
	cases := map[MonitorChangeKind]string{
		ChangeEntered:         "entered",
		ChangeLeft:            "left",
		ChangeMoved:           "moved",
		MonitorChangeKind(42): "MonitorChangeKind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

// TestInexactFlagSurfaced: a database engineered so NRA stops before
// resolving its answer reports Inexact through the facade.
func TestInexactFlagSurfaced(t *testing.T) {
	// List 1 separates item 0 by a mile; in list 2 item 0 sorts last, so
	// NRA stops (round 2: W(0) = 100+4 = 104 beats every bound) having
	// seen item 0 only in list 1.
	db, err := FromColumns([][]float64{
		{100, 1, 1},
		{4, 5, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.TopK(Query{K: 1, Algorithm: NRA})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0].Item != 0 {
		t.Fatalf("Items = %+v", res.Items)
	}
	if !res.Inexact {
		t.Error("Inexact not surfaced through the facade")
	}
	// The exact algorithms never set it.
	exact, err := db.TopK(Query{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Inexact {
		t.Error("BPA2 result marked inexact")
	}
}

// TestRestrictedAccessFacade: Query.Sortable routes TA/BPA to their
// restricted-access variants and refuses the rest.
func TestRestrictedAccessFacade(t *testing.T) {
	db := ballotDB(t)
	exact, err := db.TopK(Query{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{TA, BPA} {
		res, err := db.TopK(Query{K: 3, Algorithm: alg, Sortable: []bool{true, false, true}})
		if err != nil {
			t.Fatalf("%v restricted: %v", alg, err)
		}
		for i := range exact.Items {
			if res.Items[i].Score != exact.Items[i].Score {
				t.Errorf("%v restricted: rank %d score %v, want %v",
					alg, i+1, res.Items[i].Score, exact.Items[i].Score)
			}
		}
	}
	if _, err := db.TopK(Query{K: 1, Algorithm: BPA2, Sortable: []bool{true, false, true}}); err == nil {
		t.Error("restricted BPA2 accepted")
	}
	if _, err := db.TopK(Query{K: 1, Algorithm: TA, Sortable: []bool{false, false, false}}); err == nil {
		t.Error("no-sortable-lists query accepted")
	}
	if _, err := db.TopK(Query{K: 1, Algorithm: TA, Sortable: []bool{true, false, true}, Parallel: true}); err == nil {
		t.Error("restricted parallel query accepted")
	}
	if _, err := db.TopK(Query{K: 1, Algorithm: TA, Sortable: []bool{true, false, true}, Ceilings: []float64{0, 0, 0}}); err == nil {
		t.Error("unsound ceilings accepted")
	}
}

// TestExplainExtendedAlgorithms: the round-by-round walkthrough works for
// the Fagin-framework baselines too (their observer reports δ-style
// rounds), and the restricted variants reject Explain gracefully... they
// do not: Explain routes through TopK's observer, so restricted runs
// trace like any other. Assert both paths produce rounds.
func TestExplainExtendedAlgorithms(t *testing.T) {
	db := ballotDB(t)
	for _, alg := range []Algorithm{NRA, CA} {
		var buf strings.Builder
		res, err := db.Explain(Query{K: 2, Algorithm: alg}, &buf)
		if err != nil {
			t.Fatalf("%v explain: %v", alg, err)
		}
		if len(res.Items) != 2 {
			t.Fatalf("%v: items = %+v", alg, res.Items)
		}
		if !strings.Contains(strings.ToLower(buf.String()), "round") {
			t.Errorf("%v explain produced no rounds:\n%s", alg, buf.String())
		}
	}
}
