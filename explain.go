package topk

import (
	"context"
	"fmt"
	"io"

	"topk/internal/core"
	"topk/internal/trace"
)

// Round is a snapshot of a threshold algorithm's state after one access
// round — the rows of the paper's worked examples. Delivered through
// Query.OnRound.
type Round struct {
	// Round is the 1-based round number.
	Round int
	// Position is the sorted-access depth (TA/BPA) or the smallest best
	// position (BPA2) after the round.
	Position int
	// Threshold is the stopping threshold after the round: δ for TA, λ
	// for BPA/BPA2.
	Threshold float64
	// KthScore is the k-th best overall score seen so far; valid when
	// YFull.
	KthScore float64
	// YFull reports whether k items have been seen.
	YFull bool
	// BestPositions is the per-list best position (BPA/BPA2; nil for TA).
	BestPositions []int
	// Stopped reports whether the stopping condition held.
	Stopped bool
}

// onRoundAdapter bridges a public callback to the internal observer.
type onRoundAdapter struct {
	fn func(Round)
}

func (a onRoundAdapter) Round(info core.RoundInfo) {
	a.fn(Round{
		Round:         info.Round,
		Position:      info.Position,
		Threshold:     info.Threshold,
		KthScore:      info.KthScore,
		YFull:         info.YFull,
		BestPositions: info.BestPositions,
		Stopped:       info.Stopped,
	})
}

// Explain runs the query while writing a round-by-round walkthrough — the
// format of the paper's Examples 2 and 3 — to w, and returns the result.
// Only the threshold algorithms (TA, BPA, BPA2) produce rounds; for FA
// and Naive the trace is empty.
func (db *Database) Explain(q Query, w io.Writer) (*Result, error) {
	var log trace.Log
	res, err := db.topKObserved(q, &log)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("%s, k=%d, f=%s", q.Algorithm, q.K, scoringName(q.Scoring))
	if err := log.Render(w, title); err != nil {
		return nil, err
	}
	return res, nil
}

func scoringName(s Scoring) string {
	if s == nil {
		return Sum().Name()
	}
	return s.Name()
}

// topKObserved is Exec with an internal observer attached; it also backs
// Query.OnRound. Explain walkthroughs are interactive one-shots, so they
// run uncancellable under the background context.
func (db *Database) topKObserved(q Query, obs core.Observer) (*Result, error) {
	saved := q.onRoundObserver
	q.onRoundObserver = obs
	defer func() { q.onRoundObserver = saved }()
	return db.Exec(context.Background(), q)
}

// WithOnRound returns a copy of the query that calls fn after every round
// of TA, BPA, or BPA2. The callback must not retain the BestPositions
// slice. Useful for progress reporting and for teaching material; the
// paper's example tables are exactly this stream.
func (q Query) WithOnRound(fn func(Round)) Query {
	q.onRoundObserver = onRoundAdapter{fn: fn}
	return q
}
