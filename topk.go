package topk

import (
	"fmt"
	"io"
	"sort"

	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/store"
	"topk/internal/store/stripe"
)

// Item identifies a data item: the dense range [0, n). Databases built
// from named scores keep a dictionary; see Database.NameOf.
type Item = int

// Database is an immutable set of m sorted lists over n items, optionally
// with a name dictionary. Safe for concurrent queries once built: Exec,
// ExecDistributed and ProgressiveCtx all run on private per-query state,
// so any number of goroutines may query one Database.
type Database struct {
	db    *list.Database
	names []string // names[item] when built from named scores, else nil
	ids   map[string]Item
}

// FromColumns builds a database from m score columns: columns[i][d] is
// the local score of item d in list i. Each column becomes one sorted
// list (descending score, ties broken by ascending item).
func FromColumns(columns [][]float64) (*Database, error) {
	db, err := list.FromColumns(columns)
	if err != nil {
		return nil, err
	}
	return &Database{db: db}, nil
}

// FromNamedScores builds a database from named local scores: one map per
// list. The item universe is the union of all keys (sorted for
// determinism); an item missing from a list gets the local score
// `missing`, which must be a lower bound of that list's real scores for
// top-k semantics to stay meaningful (0 for non-negative scores).
func FromNamedScores(lists []map[string]float64, missing float64) (*Database, error) {
	if len(lists) == 0 {
		return nil, fmt.Errorf("topk: no lists")
	}
	nameSet := map[string]bool{}
	for _, l := range lists {
		for name := range l {
			nameSet[name] = true
		}
	}
	if len(nameSet) == 0 {
		return nil, fmt.Errorf("topk: no items in any list")
	}
	names := make([]string, 0, len(nameSet))
	for name := range nameSet {
		names = append(names, name)
	}
	sort.Strings(names)
	ids := make(map[string]Item, len(names))
	for i, name := range names {
		ids[name] = i
	}
	columns := make([][]float64, len(lists))
	for i, l := range lists {
		col := make([]float64, len(names))
		for d, name := range names {
			if s, ok := l[name]; ok {
				col[d] = s
			} else {
				col[d] = missing
			}
		}
		columns[i] = col
	}
	db, err := list.FromColumns(columns)
	if err != nil {
		return nil, err
	}
	return &Database{db: db, names: names, ids: ids}, nil
}

// Generate builds a synthetic database from the paper's evaluation
// families (Section 6.1).
func Generate(spec GenSpec) (*Database, error) {
	db, err := gen.Generate(gen.Spec{
		Kind:  gen.Kind(spec.Kind),
		N:     spec.N,
		M:     spec.M,
		Alpha: spec.Alpha,
		Theta: spec.Theta,
		Seed:  spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Database{db: db}, nil
}

// GenSpec describes a synthetic database; see the paper's Section 6.1.
type GenSpec struct {
	// Kind selects the score distribution family.
	Kind GenKind
	// N is the number of items per list; M the number of lists.
	N, M int
	// Alpha is the position-correlation strength for GenCorrelated
	// (0 < Alpha <= 1; smaller is more correlated).
	Alpha float64
	// Theta is the Zipf exponent for GenCorrelated scores (0 means the
	// paper's default 0.7).
	Theta float64
	// Seed makes generation deterministic.
	Seed int64
}

// GenKind selects a synthetic database family.
type GenKind uint8

const (
	// GenUniform draws scores from U(0,1) independently per list.
	GenUniform GenKind = GenKind(gen.Uniform)
	// GenGaussian draws scores from N(0,1) independently per list.
	GenGaussian GenKind = GenKind(gen.Gaussian)
	// GenCorrelated correlates item positions across lists and assigns
	// Zipf-law scores.
	GenCorrelated GenKind = GenKind(gen.Correlated)
)

// M returns the number of lists.
func (db *Database) M() int { return db.db.M() }

// N returns the number of items.
func (db *Database) N() int { return db.db.N() }

// NameOf returns the name of an item for databases built with
// FromNamedScores, or a synthesized "item<N>" name otherwise.
func (db *Database) NameOf(d Item) string {
	if db.names != nil && d >= 0 && d < len(db.names) {
		return db.names[d]
	}
	return fmt.Sprintf("item%d", d)
}

// IDOf returns the item with the given name; ok is false if the database
// has no dictionary or the name is unknown.
func (db *Database) IDOf(name string) (Item, bool) {
	d, ok := db.ids[name]
	return d, ok
}

// LocalScore returns item d's local score in list i (0-based). It
// bypasses access accounting; use it for presentation, not inside
// algorithm comparisons.
func (db *Database) LocalScore(i int, d Item) float64 {
	return db.db.List(i).ScoreOf(list.ItemID(d))
}

// PositionOf returns item d's 1-based position in list i.
func (db *Database) PositionOf(i int, d Item) int {
	return db.db.List(i).PositionOf(list.ItemID(d))
}

// Save writes the database in the binary format of cmd/topk-gen.
func (db *Database) Save(w io.Writer) error { return store.Write(w, db.db) }

// SaveFile writes the database to a file atomically.
func (db *Database) SaveFile(path string) error { return store.SaveFile(path, db.db) }

// SaveStripeFile writes the database atomically in the disk-backed
// stripe format (internal/store/stripe): columnar stripes with a footer
// index that topk-owner serves straight from disk through a bounded
// cache, instead of loading the lists into memory.
func (db *Database) SaveStripeFile(path string) error {
	return stripe.Create(path, db.db, stripe.WriteOptions{})
}

// Load reads a database written by Save.
func Load(r io.Reader) (*Database, error) {
	inner, err := store.Read(r)
	if err != nil {
		return nil, err
	}
	return &Database{db: inner}, nil
}

// LoadFile reads a database file written by SaveFile.
func LoadFile(path string) (*Database, error) {
	inner, err := store.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Database{db: inner}, nil
}

// WriteCSV exports the database in column form (one row per item, one
// column per list).
func (db *Database) WriteCSV(w io.Writer) error { return store.WriteColumnsCSV(w, db.db) }

// ReadCSV imports a database from the column form written by WriteCSV.
func ReadCSV(r io.Reader) (*Database, error) {
	inner, err := store.ReadColumnsCSV(r)
	if err != nil {
		return nil, err
	}
	return &Database{db: inner}, nil
}
