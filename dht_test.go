package topk

import "testing"

func TestRunDHTMatchesOracle(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 300, M: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Oracle(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Protocols() {
		for _, routed := range []bool{false, true} {
			res, err := db.RunDHT(Query{K: 5}, p, 128, 2, routed)
			if err != nil {
				t.Fatalf("%v routed=%v: %v", p, routed, err)
			}
			if res.Protocol != p || res.RingSize != 128 {
				t.Errorf("metadata wrong: %+v", res)
			}
			for i := range want {
				if res.Items[i].Score != want[i].Score {
					t.Errorf("%v: answer %d = %v, want %v", p, i, res.Items[i].Score, want[i].Score)
				}
			}
			if res.Hops < res.Messages && !routed {
				t.Errorf("%v cached: hops %d below messages %d", p, res.Hops, res.Messages)
			}
			if len(res.LookupHops) != db.M() {
				t.Errorf("%v: lookup hops %v", p, res.LookupHops)
			}
		}
	}
}

func TestRunDHTRoutedCostsMore(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 400, M: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := db.RunDHT(Query{K: 5}, DistBPA2, 2048, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := db.RunDHT(Query{K: 5}, DistBPA2, 2048, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if routed.Hops <= cached.Hops {
		t.Errorf("routed hops %d not above cached %d", routed.Hops, cached.Hops)
	}
	if cached.Messages != routed.Messages {
		t.Errorf("message counts differ: %d vs %d", cached.Messages, routed.Messages)
	}
}

func TestRunDHTValidation(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 50, M: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RunDHT(Query{K: 0}, DistBPA2, 64, 1, false); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := db.RunDHT(Query{K: 1}, Protocol(99), 64, 1, false); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := db.RunDHT(Query{K: 1}, DistBPA2, 0, 1, false); err == nil {
		t.Error("empty ring accepted")
	}
}
