// Quickstart: build a small database, run a top-k query with the default
// algorithm (BPA2), and compare every algorithm's access counts on the
// same query.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"topk"
)

func main() {
	// Three lists over five items. Column i holds the local scores of
	// items 0..4 in list i — think of each list as one ranked criterion.
	db, err := topk.FromColumns([][]float64{
		{30, 11, 26, 28, 17}, // criterion 1
		{21, 28, 14, 13, 24}, // criterion 2
		{14, 24, 30, 25, 29}, // criterion 3
	})
	if err != nil {
		log.Fatal(err)
	}

	// Default query: BPA2 with the Sum scoring function.
	res, err := db.TopK(topk.Query{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-2 items by sum of local scores:")
	for i, it := range res.Items {
		fmt.Printf("  %d. item %d  overall=%.0f\n", i+1, it.Item, it.Score)
	}
	fmt.Printf("accesses: %d (sorted=%d random=%d direct=%d), cost=%.1f\n\n",
		res.Stats.TotalAccesses(), res.Stats.SortedAccesses,
		res.Stats.RandomAccesses, res.Stats.DirectAccesses, res.Stats.Cost)

	// The same answers, five ways. The paper's point: BPA stops no later
	// than TA, and BPA2 never touches a list position twice.
	fmt.Println("algorithm comparison on the same query:")
	fmt.Printf("  %-6s  %6s  %6s  %6s  %6s  %8s\n", "alg", "sorted", "random", "direct", "total", "cost")
	for _, alg := range topk.Algorithms() {
		r, err := db.TopK(topk.Query{K: 2, Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		s := r.Stats
		fmt.Printf("  %-6s  %6d  %6d  %6d  %6d  %8.1f\n",
			alg, s.SortedAccesses, s.RandomAccesses, s.DirectAccesses,
			s.TotalAccesses(), s.Cost)
	}

	// A weighted query: criterion 3 matters twice as much.
	weighted, err := topk.WeightedSum([]float64{1, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	wres, err := db.TopK(topk.Query{K: 1, Scoring: weighted})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith weights (1,1,2) the winner is item %d (overall=%.0f)\n",
		wres.Items[0].Item, wres.Items[0].Score)
}
