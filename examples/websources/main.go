// Websources: top-k over a mix of scannable and lookup-only sources —
// the web-accessible-databases setting of the paper's related work
// (references [7] and [21]): a review site can stream restaurants by
// rating, but a mapping service only answers "how far is X?" — it cannot
// be scanned by distance.
//
// TAz (Fagin et al.) handles this by substituting each lookup-only
// list's ceiling into the threshold. The best-position machinery can do
// better: every distance lookup lands on a concrete position of the
// distance list, so its best position grows and BPAz's threshold
// tightens from the ceiling to real scores. Whether that wins depends on
// the data, exactly as in the paper's evaluation: on *independent*
// scores the looked-up positions rarely form a contiguous prefix and
// BPAz ties TAz; when the sources are *correlated* (well-rated places
// cluster downtown), the prefix fills in and BPAz stops far sooner.
// This example runs both workloads.
//
// Run with: go run ./examples/websources
package main

import (
	"fmt"
	"log"
	"math/rand"

	"topk"
)

const (
	restaurants = 5000
	keep        = 5
)

func main() {
	// List 0: rating index (scannable). List 1: proximity score from the
	// mapping service (lookup-only).
	sortable := []bool{true, false}

	for _, workload := range []struct {
		name        string
		correlation float64
	}{
		{"independent sources", 0},
		{"correlated sources (good restaurants cluster downtown)", 0.9},
	} {
		db := buildSources(workload.correlation)
		fmt.Printf("%s — top-%d of %d restaurants by rating + proximity\n",
			workload.name, keep, restaurants)
		for _, alg := range []topk.Algorithm{topk.TA, topk.BPA} {
			res, err := db.TopK(topk.Query{K: keep, Algorithm: alg, Sortable: sortable})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-5s stopped at rating position %4d  (%d accesses, best=%s %.2f)\n",
				alg.String()+"z", res.Stats.StopPosition, res.Stats.TotalAccesses(),
				db.NameOf(res.Items[0].Item), res.Items[0].Score)
		}
		fmt.Println()
	}
	fmt.Println("On correlated sources every proximity lookup fills in a top")
	fmt.Println("position of the unscannable list; BPAz's threshold drops below the")
	fmt.Println("ceiling TAz is stuck with, and it stops much earlier — the same")
	fmt.Println("mechanism behind the paper's Figures 9-11.")
}

// buildSources synthesizes the two score lists: ratings in [0,5] and a
// proximity score, blended toward the rating by the correlation factor.
func buildSources(correlation float64) *topk.Database {
	rng := rand.New(rand.NewSource(42))
	ratings := make([]float64, restaurants)
	proximity := make([]float64, restaurants)
	for i := range ratings {
		ratings[i] = 5 * rng.Float64()
		proximity[i] = correlation*ratings[i] + (1-correlation)*5*rng.Float64()
	}
	db, err := topk.FromColumns([][]float64{ratings, proximity})
	if err != nil {
		log.Fatal(err)
	}
	return db
}
