// Netmonitor: the paper's closing scenario (Section 8). "Consider a
// network monitoring application that monitors the activities of the
// users of some specified IP locations. For each location, the
// application maintains a list of the accessed URLs ranked by their
// frequency of access. In this application, an interesting query for the
// network administrator is: what are the top-k popular URLs?"
//
// Each monitor is a list owner; the administrator's console is the query
// originator. This example runs the distributed protocols over the
// simulated network and reports what would actually travel: messages and
// payload. BPA2 keeps the position bookkeeping at the monitors, which is
// why it ships so much less than BPA.
//
// Run with: go run ./examples/netmonitor
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"topk"
)

const (
	numURLs     = 10_000
	numMonitors = 6
	topN        = 10
)

func main() {
	db := buildMonitorLists()
	fmt.Printf("monitors: %d, distinct URLs: %d\n\n", db.M(), db.N())

	res, err := db.RunDistributed(topk.Query{K: topN}, topk.DistBPA2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d URLs by total access frequency (dist-bpa2):\n", topN)
	for i, it := range res.Items {
		fmt.Printf("  %2d. %-28s total=%.0f\n", i+1, it.Name, it.Score)
	}

	fmt.Println("\nsimulated network traffic per protocol (same query):")
	fmt.Printf("  %-10s  %10s  %10s  %8s\n", "protocol", "messages", "payload", "rounds")
	for _, p := range topk.Protocols() {
		r, err := db.RunDistributed(topk.Query{K: topN}, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s  %10d  %10d  %8d\n",
			p, r.Stats.Messages, r.Stats.Payload, r.Stats.Rounds)
	}
	fmt.Println("\nTPUT batches whole phases into single round trips; the BPA2")
	fmt.Println("protocol wins on per-access traffic because every probe lands on")
	fmt.Println("an unseen position and positions never travel to the console.")
}

// buildMonitorLists synthesizes per-monitor URL access frequencies.
// URL popularity is Zipf-distributed globally (the paper cites the Zipf
// law for exactly this kind of ranked frequency data) with per-monitor
// variation.
func buildMonitorLists() *topk.Database {
	rng := rand.New(rand.NewSource(8))
	global := make([]float64, numURLs)
	for u := range global {
		global[u] = 1 / math.Pow(float64(u+1), 0.8)
	}
	lists := make([]map[string]float64, numMonitors)
	for mi := range lists {
		l := make(map[string]float64, numURLs)
		for u := 0; u < numURLs; u++ {
			name := fmt.Sprintf("url-%05d.example.com", u)
			// Per-monitor traffic: global popularity scaled by local
			// interest, as raw (non-negative) access counts.
			local := global[u] * (0.5 + rng.Float64())
			l[name] = math.Round(local * 100_000)
		}
		lists[mi] = l
	}
	db, err := topk.FromNamedScores(lists, 0)
	if err != nil {
		log.Fatal(err)
	}
	return db
}
