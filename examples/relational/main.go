// Relational: the paper's first motivating example (Section 1). "Suppose
// we want to find the top-k tuples in a relational table according to
// some scoring function over its attributes. To answer this query, it is
// sufficient to have a sorted (indexed) list of the values of each
// attribute involved in the scoring function."
//
// This example uses the topk/relation layer: a table of apartments with
// mixed-direction attributes (bigger size is better, lower price is
// better), one sorted index per attribute, and weighted preference
// queries answered by BPA2. Changing the weights changes both the
// winners and the amount of work done.
//
// Run with: go run ./examples/relational
package main

import (
	"fmt"
	"log"
	"math/rand"

	"topk"
	"topk/relation"
)

const numApartments = 5_000

func main() {
	tbl := buildTable()
	ix, err := tbl.Index("size", "condition", "price")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table: %d apartments, indexes on %v\n\n", tbl.Rows(), ix.Columns())

	preferences := []struct {
		name    string
		weights map[string]float64
	}{
		{"balanced", nil}, // all-ones
		{"space above all", map[string]float64{"size": 5}},
		{"on a budget", map[string]float64{"price": 5}},
	}
	for _, pref := range preferences {
		matches, res, err := ix.TopK(relation.Query{K: 3, Weights: pref.weights})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top-3 for %q:\n", pref.name)
		for i, m := range matches {
			fmt.Printf("  %d. apartment #%04d  score=%.3f  (size=%.0fm² cond=%.2f price=%.0f€)\n",
				i+1, m.Row, m.Score,
				m.Attributes["size"], m.Attributes["condition"], m.Attributes["price"])
		}
		fmt.Printf("  accesses=%d cost=%.0f\n\n", res.Stats.TotalAccesses(), res.Stats.Cost)
	}

	// The same query through TA, for the paper's comparison.
	for _, alg := range []topk.Algorithm{topk.TA, topk.BPA, topk.BPA2} {
		_, res, err := ix.TopK(relation.Query{K: 3, Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s accesses=%7d cost=%8.0f\n", alg, res.Stats.TotalAccesses(), res.Stats.Cost)
	}
}

// buildTable synthesizes the apartments. Bigger apartments tend to cost
// more, so price anti-correlates with size — the adversarial case where
// top-k pruning has to work for its answers.
func buildTable() *relation.Table {
	rng := rand.New(rand.NewSource(99))
	size := make([]float64, numApartments)
	condition := make([]float64, numApartments)
	price := make([]float64, numApartments)
	for i := range size {
		size[i] = 20 + 140*rng.Float64()
		condition[i] = rng.Float64()
		price[i] = size[i]*12*(0.8+0.4*rng.Float64()) + 300*rng.Float64()
	}
	tbl, err := relation.New(numApartments)
	if err != nil {
		log.Fatal(err)
	}
	must := func(name string, dir relation.Direction, vals []float64) {
		if err := tbl.AddColumn(name, dir, vals); err != nil {
			log.Fatal(err)
		}
	}
	must("size", relation.HigherIsBetter, size)
	must("condition", relation.HigherIsBetter, condition)
	must("price", relation.LowerIsBetter, price)
	return tbl
}
