// Streams: continuous top-k monitoring over sliding windows — the
// data-stream setting the paper cites among its motivating applications
// (stream management systems, references [22] and [24]) combined with its
// closing network-monitoring scenario.
//
// A fleet of edge monitors counts URL hits. Time advances in one-minute
// buckets; the administrator's console keeps a continuous "top-k URLs of
// the last five minutes" query. Every minute the monitor re-evaluates the
// query with BPA2 over the current window aggregates and reports how the
// ranking changed: a trending URL entering, a fading one leaving, ranks
// shifting. Expired buckets fall out of the window, so a burst stops
// dominating the ranking five minutes after it ends.
//
// Run with: go run ./examples/streams
package main

import (
	"fmt"
	"log"
	"math/rand"

	"topk"
)

const (
	monitors  = 4  // edge locations counting URL hits
	keepTop   = 5  // the administrator's k
	windowLen = 5  // sliding window: last five 1-minute buckets
	minutes   = 12 // simulated duration
)

func main() {
	mon, err := topk.NewMonitor(topk.MonitorConfig{
		Sources:       monitors,
		K:             keepTop,
		WindowBuckets: windowLen,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	base := []string{"/home", "/search", "/login", "/api/v1/items", "/docs", "/about", "/pricing"}

	fmt.Printf("continuous top-%d URLs, %d monitors, %d-minute sliding window\n",
		keepTop, monitors, windowLen)

	for minute := 1; minute <= minutes; minute++ {
		feedTraffic(mon, rng, minute, base)

		snap, err := mon.TopK()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nminute %2d — %d live URLs, %d list accesses\n",
			minute, snap.Universe, snap.Accesses)
		for i, e := range snap.Items {
			fmt.Printf("  %d. %-16s %6.0f hits\n", i+1, e.Key, e.Score)
		}
		for _, c := range snap.Changes {
			switch c.Kind {
			case topk.ChangeEntered:
				fmt.Printf("     ↑ %s entered at rank %d\n", c.Key, c.Rank)
			case topk.ChangeLeft:
				fmt.Printf("     ↓ %s left (was rank %d)\n", c.Key, c.PrevRank)
			case topk.ChangeMoved:
				fmt.Printf("     ~ %s moved %d → %d\n", c.Key, c.PrevRank, c.Rank)
			}
		}

		mon.Advance() // the minute ends; the oldest bucket may expire
	}

	fmt.Println("\nthe /flashsale burst dominates minutes 4-8 and then ages out of")
	fmt.Println("the window — a landmark (unwindowed) monitor would rank it forever.")
}

// feedTraffic synthesizes one minute of hits: steady base traffic with a
// burst on /flashsale during minutes 4-6.
func feedTraffic(mon *topk.Monitor, rng *rand.Rand, minute int, base []string) {
	for _, m := range monitorRange() {
		for i, url := range base {
			// Steady traffic, heavier on the first URLs.
			hits := float64(rng.Intn(20) + 40/(i+1))
			must(mon.Observe(m, url, hits))
		}
		if minute >= 4 && minute <= 6 {
			must(mon.Observe(m, "/flashsale", float64(300+rng.Intn(100))))
		}
	}
}

func monitorRange() []int {
	out := make([]int, monitors)
	for i := range out {
		out[i] = i
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
