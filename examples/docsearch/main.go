// Docsearch: the paper's information-retrieval motivation (Section 1).
// "Suppose we want to find the top-k documents whose aggregate rank is
// the highest wrt. some given keywords. ... the solution is to have for
// each keyword a ranked list of documents, and return the k documents
// whose aggregate rank in all lists are the highest."
//
// This example builds one ranked list per query keyword over a synthetic
// document corpus (Zipf-ish relevance scores, correlated across keywords
// the way real topical corpora are) and compares the work TA, BPA and
// BPA2 do to answer the same top-10 query.
//
// Run with: go run ./examples/docsearch
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"topk"
)

const (
	numDocs     = 20_000
	numKeywords = 4
	topN        = 10
)

func main() {
	keywords := []string{"distributed", "top-k", "threshold", "algorithm"}[:numKeywords]
	lists := buildCorpus(keywords)

	db, err := topk.FromNamedScores(lists, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d documents, %d keyword lists\n\n", db.N(), db.M())

	res, err := db.TopK(topk.Query{K: topN})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d documents for %v:\n", topN, keywords)
	for i, it := range res.Items {
		fmt.Printf("  %2d. %-12s aggregate=%.4f\n", i+1, it.Name, it.Score)
	}

	fmt.Println("\nwork per algorithm for the same query:")
	fmt.Printf("  %-5s  %9s  %12s  %9s\n", "alg", "accesses", "exec cost", "stop pos")
	for _, alg := range []topk.Algorithm{topk.TA, topk.BPA, topk.BPA2} {
		r, err := db.TopK(topk.Query{K: topN, Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		stop := fmt.Sprintf("%d", r.Stats.StopPosition)
		if alg == topk.BPA2 {
			stop = fmt.Sprintf("bp=%d", r.Stats.BestPositions[0])
		}
		fmt.Printf("  %-5s  %9d  %12.0f  %9s\n",
			alg, r.Stats.TotalAccesses(), r.Stats.Cost, stop)
	}
	fmt.Println("\nBPA2 reads each list position at most once — on keyword lists")
	fmt.Println("with correlated relevance that is most of the saving.")
}

// buildCorpus synthesizes per-keyword relevance lists. A document has a
// latent quality drawn once, plus keyword-specific noise, so its rank is
// correlated across keywords — the regime where best positions shine.
func buildCorpus(keywords []string) []map[string]float64 {
	rng := rand.New(rand.NewSource(2007)) // the paper's year, for luck
	quality := make([]float64, numDocs)
	for d := range quality {
		// Heavy-tailed "authority" of the document.
		quality[d] = math.Pow(rng.Float64(), 3)
	}
	lists := make([]map[string]float64, len(keywords))
	for ki := range keywords {
		l := make(map[string]float64, numDocs)
		for d := 0; d < numDocs; d++ {
			name := fmt.Sprintf("doc-%05d", d)
			relevance := 0.7*quality[d] + 0.3*rng.Float64()
			l[name] = relevance
		}
		lists[ki] = l
	}
	return lists
}
