// P2P: the paper's future work (Section 8) — "we plan to develop
// BPA-style algorithms for P2P systems, in particular for the popular
// DHTs where top-k query support is challenging."
//
// This example stores each sorted list at a node of a simulated
// Chord-style DHT and runs the distributed protocols from the query
// originator, pricing traffic in overlay hops. Two lessons appear:
// resolving list owners once and keeping direct connections ("cached")
// makes hop cost track the protocol's message count, and BPA2's reduced
// message count is what keeps the overlay cost down as the network
// grows.
//
// Run with: go run ./examples/p2p
package main

import (
	"fmt"
	"log"

	"topk"
)

func main() {
	db, err := topk.Generate(topk.GenSpec{Kind: topk.GenUniform, N: 5_000, M: 5, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	const k = 10

	fmt.Printf("database: n=%d items, m=%d lists stored in the DHT; top-%d query\n\n", db.N(), db.M(), k)

	fmt.Println("overlay hops by ring size (cached connections):")
	fmt.Printf("  %8s  %12s  %12s  %12s\n", "nodes", "dist-ta", "dist-bpa2", "tput")
	for _, ringSize := range []int{64, 1024, 16384} {
		var row [3]int64
		for i, p := range []topk.Protocol{topk.DistTA, topk.DistBPA2, topk.TPUT} {
			res, err := db.RunDHT(topk.Query{K: k}, p, ringSize, 1, false)
			if err != nil {
				log.Fatal(err)
			}
			row[i] = res.Hops
		}
		fmt.Printf("  %8d  %12d  %12d  %12d\n", ringSize, row[0], row[1], row[2])
	}

	fmt.Println("\ncached vs fully routed (dist-bpa2, 4096 nodes):")
	for _, routed := range []bool{false, true} {
		res, err := db.RunDHT(topk.Query{K: k}, topk.DistBPA2, 4096, 1, routed)
		if err != nil {
			log.Fatal(err)
		}
		mode := "cached"
		if routed {
			mode = "routed"
		}
		fmt.Printf("  %-7s messages=%d hops=%d (lookup distances %v)\n",
			mode, res.Messages, res.Hops, res.LookupHops)
	}

	res, err := db.RunDHT(topk.Query{K: k}, topk.DistBPA2, 1024, 1, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-3 answers (of %d): ", len(res.Items))
	for i, it := range res.Items[:3] {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("item %d (%.3f)", it.Item, it.Score)
	}
	fmt.Println()
}
