package topk

import (
	"testing"
)

func TestProgressiveFacade(t *testing.T) {
	db := ballotDB(t)
	it, err := db.Progressive(ProgressiveQuery{})
	if err != nil {
		t.Fatal(err)
	}

	oracle, err := db.Oracle(db.N(), Sum())
	if err != nil {
		t.Fatal(err)
	}
	var got []ScoredItem
	for {
		item, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, item)
	}
	if len(got) != len(oracle) {
		t.Fatalf("delivered %d items, want %d", len(got), len(oracle))
	}
	for i := range oracle {
		if got[i].Score != oracle[i].Score {
			t.Errorf("rank %d score = %v, want %v", i+1, got[i].Score, oracle[i].Score)
		}
	}
	if it.Delivered() != db.N() {
		t.Errorf("Delivered = %d", it.Delivered())
	}
	stats := it.Stats()
	if stats.TotalAccesses() == 0 || stats.Cost == 0 || stats.Rounds == 0 {
		t.Errorf("stats = %+v", stats)
	}
	// Exhausted iterators stay exhausted.
	if _, ok := it.Next(); ok {
		t.Error("Next returned an item after exhaustion")
	}
}

func TestProgressiveFacadeLazy(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenCorrelated, N: 5000, M: 4, Alpha: 0.001, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	it, err := db.Progressive(ProgressiveQuery{Tracker: IntervalTracker})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatalf("iterator ended at %d", i)
		}
	}
	// Ten answers from a strongly correlated database must not require
	// anything near a full scan.
	if total := it.Stats().TotalAccesses(); total > int64(db.N()) {
		t.Errorf("10 answers cost %d accesses over n=%d", total, db.N())
	}
}

func TestProgressiveFacadeValidation(t *testing.T) {
	db := ballotDB(t)
	// badScoring (deliberately non-monotone) is shared with topk_test.go.
	if _, err := db.Progressive(ProgressiveQuery{Scoring: badScoring{}, CheckMonotone: true}); err == nil {
		t.Error("non-monotone scoring accepted")
	}
}
